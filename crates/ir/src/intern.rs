//! Shape interning: dense ids for the distinct shapes a long-lived
//! compiler session has seen.
//!
//! A production service compiles many programs, most of which repeat a
//! small set of chain shapes. [`ShapeInterner`] deduplicates them into
//! stable [`ShapeId`]s so downstream caches (DP solver state, compiled
//! chains) can key on a `u32` instead of cloning and hashing whole shapes
//! on every lookup.

use crate::shape::Shape;
use std::collections::HashMap;

/// Stable dense id of an interned [`Shape`] (valid for the lifetime of
/// the interner that produced it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeId(u32);

impl ShapeId {
    /// The id as a dense index (`0..interner.len()`).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Deduplicating registry of shapes with dense ids.
#[derive(Debug, Clone, Default)]
pub struct ShapeInterner {
    shapes: Vec<Shape>,
    ids: HashMap<Shape, u32>,
}

impl ShapeInterner {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Self {
        ShapeInterner::default()
    }

    /// Intern `shape`, returning the existing id if an equal shape was
    /// seen before.
    ///
    /// # Panics
    ///
    /// Panics after `u32::MAX` distinct shapes (not a practical limit).
    pub fn intern(&mut self, shape: &Shape) -> ShapeId {
        if let Some(&id) = self.ids.get(shape) {
            return ShapeId(id);
        }
        let id = u32::try_from(self.shapes.len()).expect("shape space fits u32");
        self.shapes.push(shape.clone());
        self.ids.insert(shape.clone(), id);
        ShapeId(id)
    }

    /// The shape behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different interner (index out of range).
    #[must_use]
    pub fn get(&self, id: ShapeId) -> &Shape {
        &self.shapes[id.index()]
    }

    /// The id of `shape` if it has been interned.
    #[must_use]
    pub fn lookup(&self, shape: &Shape) -> Option<ShapeId> {
        self.ids.get(shape).copied().map(ShapeId)
    }

    /// Number of distinct shapes interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// `true` if no shapes have been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Iterate `(id, shape)` pairs in dense-id order — the serialization
    /// order used by session snapshots, so persisted structures can
    /// reference shapes by their `u32` ids instead of repeating
    /// descriptors.
    pub fn iter(&self) -> impl Iterator<Item = (ShapeId, &Shape)> {
        self.shapes
            .iter()
            .enumerate()
            .map(|(i, s)| (ShapeId(i as u32), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::Features;
    use crate::operand::Operand;

    #[test]
    fn interning_dedups_equal_shapes() {
        let g = Operand::plain(Features::general());
        let s2 = Shape::new(vec![g, g]).unwrap();
        let s3 = Shape::new(vec![g, g, g]).unwrap();
        let mut interner = ShapeInterner::new();
        let a = interner.intern(&s2);
        let b = interner.intern(&s3);
        let c = interner.intern(&s2.clone());
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.get(a), &s2);
        assert_eq!(interner.get(b), &s3);
        assert_eq!(interner.lookup(&s3), Some(b));
        assert_eq!(interner.lookup(&Shape::new(vec![g]).unwrap()), None);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        let pairs: Vec<(ShapeId, &Shape)> = interner.iter().collect();
        assert_eq!(pairs, vec![(a, &s2), (b, &s3)], "iter is dense-id order");
    }
}
