//! A minimal exact rational number type.
//!
//! Kernel FLOP costs have coefficients like `1/3`, `5/3`, `7/3`, `8/3`
//! (Table I of the paper). Representing them exactly keeps symbolic cost
//! polynomials canonical — two variants have equal cost functions iff their
//! polynomial representations are identical — which floating-point
//! coefficients would not guarantee.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// An exact rational number with `i128` numerator and denominator.
///
/// Always kept in canonical form: the denominator is positive and
/// `gcd(|num|, den) == 1`.
///
/// # Example
///
/// ```
/// use gmc_ir::Ratio;
/// let a = Ratio::new(8, 3);
/// let b = Ratio::new(1, 3);
/// assert_eq!(a - b, Ratio::from(7) / Ratio::from(3));
/// assert_eq!((a - b).to_f64(), 7.0 / 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i128,
    den: i128,
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a < 0 {
        -a
    } else {
        a
    }
}

impl Ratio {
    /// The value zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The value one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Create `num / den` in canonical form.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "ratio with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            num = -num;
            den = -den;
        }
        Ratio { num, den }
    }

    /// Numerator (canonical form).
    #[must_use]
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (canonical form, always positive).
    #[must_use]
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Convert to `f64`.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `true` iff the value is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` iff the value is strictly positive.
    #[must_use]
    pub fn is_positive(self) -> bool {
        self.num > 0
    }
}

impl From<i64> for Ratio {
    fn from(v: i64) -> Self {
        Ratio {
            num: i128::from(v),
            den: 1,
        }
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + (-rhs)
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Ratio {
    type Output = Ratio;
    fn div(self, rhs: Ratio) -> Ratio {
        assert!(rhs.num != 0, "division by zero ratio");
        Ratio::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form() {
        assert_eq!(Ratio::new(4, 6), Ratio::new(2, 3));
        assert_eq!(Ratio::new(-4, -6), Ratio::new(2, 3));
        assert_eq!(Ratio::new(4, -6), Ratio::new(-2, 3));
        assert_eq!(Ratio::new(0, 5), Ratio::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(1, 6);
        assert_eq!(a + b, Ratio::new(1, 2));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 18));
        assert_eq!(a / b, Ratio::from(2));
        assert_eq!(-a, Ratio::new(-1, 3));
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
        assert!(Ratio::new(7, 3) > Ratio::from(2));
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::new(8, 3).to_string(), "8/3");
        assert_eq!(Ratio::from(5).to_string(), "5");
        assert_eq!(Ratio::new(-1, 3).to_string(), "-1/3");
    }

    #[test]
    fn conversion() {
        assert_eq!(Ratio::new(7, 2).to_f64(), 3.5);
        assert!(Ratio::new(1, 1).is_positive());
        assert!(!Ratio::ZERO.is_positive());
        assert!(Ratio::ZERO.is_zero());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }
}
