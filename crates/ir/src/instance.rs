//! Concrete instances of a symbolic chain and random instance sampling.

use crate::classes::EquivClasses;
use crate::shape::Shape;
use rand::Rng;
use std::fmt;

/// A concrete assignment of sizes `q = (q_0, ..., q_n)` to a symbolic chain.
///
/// Invariant: sizes bound by the shape's equivalence classes are equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instance {
    sizes: Vec<u64>,
}

impl Instance {
    /// Create an instance from an explicit size vector.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero.
    #[must_use]
    pub fn new(sizes: Vec<u64>) -> Self {
        assert!(
            sizes.iter().all(|&s| s > 0),
            "matrix sizes must be positive"
        );
        Instance { sizes }
    }

    /// The size vector.
    #[must_use]
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// The value of `q_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn q(&self, i: usize) -> u64 {
        self.sizes[i]
    }

    /// Number of size symbols (`n + 1`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// `true` if there are no sizes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// The index of (one of) the minimum sizes — the `m` of Lemma 2.
    #[must_use]
    pub fn argmin(&self) -> usize {
        self.sizes
            .iter()
            .enumerate()
            .min_by_key(|&(_, &s)| s)
            .map(|(i, _)| i)
            .expect("instance is non-empty")
    }

    /// `true` if the instance respects the equality constraints of `classes`.
    #[must_use]
    pub fn respects(&self, classes: &EquivClasses) -> bool {
        self.sizes.len() == classes.len()
            && (0..self.sizes.len()).all(|i| self.sizes[i] == self.sizes[classes.find(i)])
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q = (")?;
        for (i, s) in self.sizes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")
    }
}

/// Samples random instances of a shape with sizes in a configured range,
/// respecting the shape's size-symbol equivalence classes.
///
/// The paper's experiments sample uniformly in `[2, 1000]` (FLOPs
/// experiment) or `[50, 1000]` (time experiment).
///
/// # Example
///
/// ```
/// use gmc_ir::{Features, InstanceSampler, Operand, Shape};
/// use rand::{rngs::StdRng, SeedableRng};
/// let g = Operand::plain(Features::general());
/// let shape = Shape::new(vec![g, g])?;
/// let sampler = InstanceSampler::new(&shape, 2, 1000);
/// let mut rng = StdRng::seed_from_u64(7);
/// let inst = sampler.sample(&mut rng);
/// assert_eq!(inst.len(), 3);
/// assert!(inst.sizes().iter().all(|&s| (2..=1000).contains(&s)));
/// # Ok::<(), gmc_ir::ShapeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct InstanceSampler {
    classes: EquivClasses,
    lo: u64,
    hi: u64,
}

impl InstanceSampler {
    /// Create a sampler for `shape` with sizes uniform in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo == 0` or `lo > hi`.
    #[must_use]
    pub fn new(shape: &Shape, lo: u64, hi: u64) -> Self {
        assert!(lo > 0 && lo <= hi, "invalid size range [{lo}, {hi}]");
        InstanceSampler {
            classes: shape.size_classes(),
            lo,
            hi,
        }
    }

    /// Sample one instance.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Instance {
        let n = self.classes.len();
        let mut sizes = vec![0u64; n];
        for i in 0..n {
            let root = self.classes.find(i);
            if root == i {
                sizes[i] = rng.gen_range(self.lo..=self.hi);
            } else {
                sizes[i] = sizes[root];
            }
        }
        Instance::new(sizes)
    }

    /// Sample `count` instances.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<Instance> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{Features, Property, Structure};
    use crate::operand::Operand;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn shape_glg() -> Shape {
        let g = Operand::plain(Features::general());
        let l =
            Operand::plain(Features::new(Structure::LowerTri, Property::NonSingular)).inverted();
        Shape::new(vec![g, l, g]).unwrap()
    }

    #[test]
    fn samples_respect_classes() {
        let shape = shape_glg();
        let sampler = InstanceSampler::new(&shape, 2, 50);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let inst = sampler.sample(&mut rng);
            assert!(inst.respects(&shape.size_classes()));
            assert_eq!(inst.q(1), inst.q(2));
            assert!(inst.sizes().iter().all(|&s| (2..=50).contains(&s)));
        }
    }

    #[test]
    fn argmin_finds_smallest() {
        let inst = Instance::new(vec![9, 3, 3, 7]);
        assert_eq!(inst.argmin(), 1);
    }

    #[test]
    fn respects_detects_violation() {
        let shape = shape_glg();
        let bad = Instance::new(vec![4, 5, 6, 7]);
        assert!(!bad.respects(&shape.size_classes()));
    }

    #[test]
    fn sample_many_count() {
        let shape = shape_glg();
        let sampler = InstanceSampler::new(&shape, 2, 10);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sampler.sample_many(&mut rng, 17).len(), 17);
    }

    #[test]
    #[should_panic(expected = "sizes must be positive")]
    fn zero_size_rejected() {
        let _ = Instance::new(vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "invalid size range")]
    fn bad_range_rejected() {
        let _ = InstanceSampler::new(&shape_glg(), 5, 4);
    }

    #[test]
    fn display_lists_sizes() {
        let inst = Instance::new(vec![2, 3]);
        assert_eq!(inst.to_string(), "q = (2, 3)");
    }
}
