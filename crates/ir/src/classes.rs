//! Equivalence classes over size symbols (union-find).
//!
//! When matrix `M_i` is necessarily square, its row and column sizes are
//! bound by equality (`q_{i-1} ~ q_i` in the paper's notation). The classes
//! drive both instance sampling (one free size per class) and the
//! Theorem-2 construction of the base variant set.

/// A union-find structure over the size symbols `q_0 ... q_n`.
#[derive(Debug, Clone)]
pub struct EquivClasses {
    parent: Vec<usize>,
}

impl EquivClasses {
    /// Create `n` singleton classes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        EquivClasses {
            parent: (0..n).collect(),
        }
    }

    /// Number of symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if there are no symbols.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The canonical representative of `i`'s class (smallest member).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn find(&self, mut i: usize) -> usize {
        while self.parent[i] != i {
            i = self.parent[i];
        }
        i
    }

    /// Merge the classes of `a` and `b`, keeping the smaller index as root.
    pub fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi] = lo;
    }

    /// Number of distinct classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        (0..self.len()).filter(|&i| self.find(i) == i).count()
    }

    /// The classes as sorted member lists, ordered by smallest member.
    #[must_use]
    pub fn classes(&self) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = Vec::new();
        let mut roots: Vec<usize> = (0..self.len()).filter(|&i| self.find(i) == i).collect();
        roots.sort_unstable();
        for r in roots {
            out.push((0..self.len()).filter(|&i| self.find(i) == r).collect());
        }
        out
    }

    /// A map `symbol -> canonical representative`, usable with
    /// [`crate::Poly::rename_vars`].
    #[must_use]
    pub fn canonical_map(&self) -> Vec<usize> {
        (0..self.len()).map(|i| self.find(i)).collect()
    }

    /// `true` if `a` and `b` are in the same class.
    #[must_use]
    pub fn same(&self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let c = EquivClasses::new(4);
        assert_eq!(c.num_classes(), 4);
        assert!(!c.same(0, 1));
    }

    #[test]
    fn union_merges_transitively() {
        let mut c = EquivClasses::new(5);
        c.union(1, 2);
        c.union(2, 3);
        assert!(c.same(1, 3));
        assert_eq!(c.num_classes(), 3);
        assert_eq!(c.find(3), 1);
    }

    #[test]
    fn classes_listing_sorted() {
        let mut c = EquivClasses::new(6);
        c.union(4, 2);
        c.union(0, 1);
        let cls = c.classes();
        assert_eq!(cls, vec![vec![0, 1], vec![2, 4], vec![3], vec![5]]);
    }

    #[test]
    fn canonical_map_for_poly_rename() {
        let mut c = EquivClasses::new(3);
        c.union(2, 1);
        assert_eq!(c.canonical_map(), vec![0, 1, 1]);
    }

    #[test]
    fn union_is_idempotent() {
        let mut c = EquivClasses::new(3);
        c.union(0, 1);
        c.union(0, 1);
        c.union(1, 0);
        assert_eq!(c.num_classes(), 2);
    }
}
