//! Deterministic fault injection for the serving layer.
//!
//! The supervision machinery in [`supervisor`](crate::supervisor) only
//! earns its keep if shard deaths, latency spikes, and torn snapshot
//! writes can be *reproduced on demand* — otherwise every robustness
//! claim is asserted, not tested. This module is that switchboard. It is
//! compiled unconditionally (the un-armed hot path is one relaxed atomic
//! load) and armed two ways:
//!
//! * the `GMC_FAULT` environment variable, read by the `gmcc --serve`
//!   daemon at startup ([`FaultPlan::from_env`]);
//! * an in-band `{"op":"fault","spec":"..."}` request, accepted only
//!   when the daemon runs with `--enable-faults`.
//!
//! # Fault matrix
//!
//! A spec is a comma-separated list of faults:
//!
//! | spec | effect | exercises |
//! |------|--------|-----------|
//! | `panic:<shard>:<nth>` | shard `<shard>` panics on its `<nth>` compile attempt (1-based, cumulative across restarts) | panic catch, warm restart, backoff, circuit breaker, exactly-one-response |
//! | `delay:<ms>` | every compile on every shard sleeps `<ms>` ms first | queue growth, admission control (shedding), deadline expiry at dequeue and in the submitter |
//! | `snapshot_torn` | snapshot saves write a truncated file directly to the target path, bypassing the atomic rename | corrupt-snapshot quarantine and cold start on the next boot |
//! | `frag_torn` | snapshot saves cut the file mid-way through its trailing fragment section (truncated write, no rename) | the fragment section's count check: a torn fragment tail must corrupt the whole snapshot, never restore a partial store |
//! | `conn_drop:<conn>:<nth>` | socket connection `<conn>` (1-based accept order) is severed in place of its `<nth>` outbound line — an abrupt disconnect mid-response | killed-connection write-off: in-flight work leaves the exactly-once tables, late shard replies are dropped and counted |
//! | `conn_stall:<conn>:<ms>` | connection `<conn>`'s writer sleeps `<ms>` ms before every line it writes (a slow reader / slowloris peer) | bounded writer queues: overflow, the slow-consumer grace window, and slow-close |
//! | `conn_garbage:<conn>` | connection `<conn>`'s 2nd request line is read as non-UTF-8 garbage | in-band `bad_request` answers keep per-connection id accounting exact even mid-stream |
//!
//! Panics fire *before* the session is touched, so a killed shard's
//! session never observes a half-applied compile — which also keeps the
//! cache counters exact for the chaos tests' bookkeeping invariants.
//! All triggers are deterministic functions of the request stream; no
//! clocks or randomness decide *whether* a fault fires.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Environment variable the `gmcc --serve` daemon reads fault specs
/// from (e.g. `GMC_FAULT=panic:0:3,delay:5`).
pub const FAULT_ENV: &str = "GMC_FAULT";

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Spec {
    /// `(shard, nth compile attempt)` pairs that panic, 1-based.
    panics: Vec<(usize, u64)>,
    /// Injected latency before every compile.
    delay: Option<Duration>,
    /// Tear the next snapshot saves (truncated write, no rename).
    snapshot_torn: bool,
    /// Tear snapshot saves mid-way through the fragment section.
    frag_torn: bool,
    /// `(connection, nth outbound line)` pairs that sever the
    /// connection in place of that line, 1-based.
    conn_drops: Vec<(u64, u64)>,
    /// Per-connection writer stall before every outbound line.
    conn_stalls: Vec<(u64, Duration)>,
    /// Connections whose 2nd request line is read as garbage.
    conn_garbage: Vec<u64>,
}

/// A shared, thread-safe fault plan (see the [module docs](self) for
/// the spec grammar). Clones share state, so the plan handed to
/// [`ServeConfig`](crate::ServeConfig) can be re-armed while the
/// service runs — that is how the daemon's `{"op":"fault"}` request
/// works.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// Fast-path guard so un-faulted services never take the lock.
    armed: AtomicBool,
    spec: Mutex<Spec>,
}

impl FaultPlan {
    /// An empty (inert) plan.
    #[must_use]
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Parse a fault spec like `panic:0:3,delay:5,snapshot_torn`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the malformed clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let plan = FaultPlan::new();
        plan.arm(spec)?;
        Ok(plan)
    }

    /// Build a plan from the [`FAULT_ENV`] environment variable; an
    /// unset or empty variable yields an inert plan.
    ///
    /// # Errors
    ///
    /// Returns the parse error of a malformed spec (a daemon should
    /// refuse to start rather than silently run without the faults an
    /// operator asked for).
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var(FAULT_ENV) {
            Ok(v) if !v.trim().is_empty() => {
                FaultPlan::parse(v.trim()).map_err(|e| format!("bad {FAULT_ENV} spec: {e}"))
            }
            _ => Ok(FaultPlan::new()),
        }
    }

    /// Merge `spec`'s clauses into the live plan (panic triggers
    /// accumulate; `delay`/`snapshot_torn` overwrite).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed clause; on error nothing
    /// is armed.
    pub fn arm(&self, spec: &str) -> Result<(), String> {
        let mut add = Spec::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let mut parts = clause.split(':');
            match parts.next().unwrap_or("") {
                "panic" => {
                    let shard = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| format!("`{clause}`: expected panic:<shard>:<nth>"))?;
                    let nth: u64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            format!("`{clause}`: expected panic:<shard>:<nth> with nth >= 1")
                        })?;
                    add.panics.push((shard, nth));
                }
                "delay" => {
                    let ms: u64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| format!("`{clause}`: expected delay:<ms>"))?;
                    add.delay = Some(Duration::from_millis(ms));
                }
                "snapshot_torn" => add.snapshot_torn = true,
                "frag_torn" => add.frag_torn = true,
                "conn_drop" => {
                    let conn: u64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&c| c >= 1)
                        .ok_or_else(|| format!("`{clause}`: expected conn_drop:<conn>:<nth>"))?;
                    let nth: u64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            format!("`{clause}`: expected conn_drop:<conn>:<nth> with nth >= 1")
                        })?;
                    add.conn_drops.push((conn, nth));
                }
                "conn_stall" => {
                    let conn: u64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&c| c >= 1)
                        .ok_or_else(|| format!("`{clause}`: expected conn_stall:<conn>:<ms>"))?;
                    let ms: u64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| format!("`{clause}`: expected conn_stall:<conn>:<ms>"))?;
                    add.conn_stalls.push((conn, Duration::from_millis(ms)));
                }
                "conn_garbage" => {
                    let conn: u64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&c| c >= 1)
                        .ok_or_else(|| format!("`{clause}`: expected conn_garbage:<conn>"))?;
                    add.conn_garbage.push(conn);
                }
                other => return Err(format!("unknown fault `{other}` in `{clause}`")),
            }
            if parts.next().is_some() {
                return Err(format!("`{clause}`: trailing components"));
            }
        }
        let mut spec = self.inner.spec.lock().expect("fault spec lock");
        spec.panics.extend(add.panics);
        if add.delay.is_some() {
            spec.delay = add.delay;
        }
        spec.snapshot_torn |= add.snapshot_torn;
        spec.frag_torn |= add.frag_torn;
        spec.conn_drops.extend(add.conn_drops);
        spec.conn_stalls.extend(add.conn_stalls);
        spec.conn_garbage.extend(add.conn_garbage);
        let armed = !spec.panics.is_empty()
            || spec.delay.is_some()
            || spec.snapshot_torn
            || spec.frag_torn
            || !spec.conn_drops.is_empty()
            || !spec.conn_stalls.is_empty()
            || !spec.conn_garbage.is_empty();
        self.inner.armed.store(armed, Ordering::Release);
        Ok(())
    }

    /// Disarm every fault.
    pub fn clear(&self) {
        *self.inner.spec.lock().expect("fault spec lock") = Spec::default();
        self.inner.armed.store(false, Ordering::Release);
    }

    /// `true` if any fault is armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.inner.armed.load(Ordering::Acquire)
    }

    /// Shard-side hook, called by the worker at the top of every compile
    /// attempt (`nth` is 1-based and cumulative across restarts):
    /// injects the armed delay, then panics if a `panic:<shard>:<nth>`
    /// trigger matches. The panic message is stable and grep-able.
    pub(crate) fn before_compile(&self, shard: usize, nth: u64) {
        if !self.is_armed() {
            return;
        }
        let (delay, hit) = {
            let spec = self.inner.spec.lock().expect("fault spec lock");
            (spec.delay, spec.panics.contains(&(shard, nth)))
        };
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        if hit {
            panic!("injected fault: panic at shard {shard} compile {nth}");
        }
    }

    /// `true` if snapshot saves should be torn (truncated, non-atomic).
    pub(crate) fn tear_snapshot(&self) -> bool {
        self.is_armed()
            && self
                .inner
                .spec
                .lock()
                .expect("fault spec lock")
                .snapshot_torn
    }

    /// `true` if snapshot saves should be cut mid-way through the
    /// trailing fragment section (truncated, non-atomic).
    pub(crate) fn tear_frag_section(&self) -> bool {
        self.is_armed() && self.inner.spec.lock().expect("fault spec lock").frag_torn
    }

    /// Transport hook: `true` if connection `conn`'s `nth` outbound
    /// line (1-based) should sever the connection instead of being
    /// written — an abrupt disconnect mid-response.
    pub(crate) fn conn_drop_hit(&self, conn: u64, nth: u64) -> bool {
        self.is_armed()
            && self
                .inner
                .spec
                .lock()
                .expect("fault spec lock")
                .conn_drops
                .contains(&(conn, nth))
    }

    /// Transport hook: the armed writer stall for connection `conn`,
    /// slept before every line its writer thread flushes (a slow
    /// reader from the daemon's point of view).
    pub(crate) fn conn_stall(&self, conn: u64) -> Option<Duration> {
        if !self.is_armed() {
            return None;
        }
        self.inner
            .spec
            .lock()
            .expect("fault spec lock")
            .conn_stalls
            .iter()
            .find(|(c, _)| *c == conn)
            .map(|(_, d)| *d)
    }

    /// Transport hook: `true` if connection `conn`'s request line
    /// `line_no` should be read as non-UTF-8 garbage. The trigger is
    /// pinned to the 2nd line so the fault lands mid-stream (after the
    /// connection has proven it can speak the protocol) and stays a
    /// deterministic function of the request stream.
    pub(crate) fn conn_garbage_hit(&self, conn: u64, line_no: u64) -> bool {
        line_no == 2
            && self.is_armed()
            && self
                .inner
                .spec
                .lock()
                .expect("fault spec lock")
                .conn_garbage
                .contains(&conn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_matrix() {
        let plan = FaultPlan::parse(
            "panic:0:3, delay:7 ,snapshot_torn,panic:1:2,frag_torn,\
             conn_drop:2:5,conn_stall:1:40,conn_garbage:3",
        )
        .unwrap();
        assert!(plan.is_armed());
        assert!(plan.tear_snapshot());
        assert!(plan.tear_frag_section());
        let spec = plan.inner.spec.lock().unwrap();
        assert_eq!(spec.panics, vec![(0, 3), (1, 2)]);
        assert_eq!(spec.delay, Some(Duration::from_millis(7)));
        assert_eq!(spec.conn_drops, vec![(2, 5)]);
        assert_eq!(spec.conn_stalls, vec![(1, Duration::from_millis(40))]);
        assert_eq!(spec.conn_garbage, vec![3]);
    }

    #[test]
    fn connection_hooks_trigger_exactly() {
        let plan = FaultPlan::parse("conn_drop:2:5,conn_stall:1:40,conn_garbage:3").unwrap();
        assert!(plan.conn_drop_hit(2, 5));
        assert!(!plan.conn_drop_hit(2, 4), "nth is exact");
        assert!(!plan.conn_drop_hit(1, 5), "conn is exact");
        assert_eq!(plan.conn_stall(1), Some(Duration::from_millis(40)));
        assert_eq!(plan.conn_stall(2), None);
        assert!(plan.conn_garbage_hit(3, 2), "pinned to the 2nd line");
        assert!(!plan.conn_garbage_hit(3, 1));
        assert!(!plan.conn_garbage_hit(3, 3));
        assert!(!plan.conn_garbage_hit(1, 2));
        plan.clear();
        assert!(!plan.conn_drop_hit(2, 5));
        assert_eq!(plan.conn_stall(1), None);
        assert!(!plan.conn_garbage_hit(3, 2));
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(!plan.is_armed());
        assert!(!plan.tear_snapshot());
        assert!(!plan.tear_frag_section());
        plan.before_compile(0, 1); // must not panic or sleep
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "panic",
            "panic:0",
            "panic:x:1",
            "panic:0:0",
            "panic:0:1:2",
            "delay",
            "delay:x",
            "frobnicate",
            "snapshot_torn:5",
            "frag_torn:1",
            "conn_drop",
            "conn_drop:1",
            "conn_drop:0:1",
            "conn_drop:1:0",
            "conn_drop:1:2:3",
            "conn_stall:1",
            "conn_stall:0:5",
            "conn_stall:1:x",
            "conn_garbage",
            "conn_garbage:0",
            "conn_garbage:1:2",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn panic_trigger_is_exact_and_one_shot_by_count() {
        let plan = FaultPlan::parse("panic:1:2").unwrap();
        plan.before_compile(1, 1);
        plan.before_compile(0, 2); // other shard
        let caught = std::panic::catch_unwind(|| plan.before_compile(1, 2));
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert_eq!(msg, "injected fault: panic at shard 1 compile 2");
        plan.before_compile(1, 3); // counter moved past the trigger
    }

    #[test]
    fn arm_merges_and_clear_disarms() {
        let plan = FaultPlan::new();
        plan.arm("panic:0:1").unwrap();
        plan.arm("delay:3").unwrap();
        assert!(plan.is_armed());
        {
            let spec = plan.inner.spec.lock().unwrap();
            assert_eq!(spec.panics, vec![(0, 1)]);
            assert_eq!(spec.delay, Some(Duration::from_millis(3)));
        }
        assert!(plan.arm("bogus").is_err(), "bad arm leaves plan unchanged");
        assert!(plan.is_armed());
        plan.clear();
        assert!(!plan.is_armed());
        plan.before_compile(0, 1);
    }
}
