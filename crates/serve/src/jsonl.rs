//! Minimal JSONL wire format for the `gmcc --serve` daemon.
//!
//! One JSON object per line. Requests are flat objects:
//!
//! ```text
//! {"id": 1, "name": "x", "emit": "both", "deadline_ms": 500,
//!  "source": "Matrix A <General, Singular>; ..."}
//! ```
//!
//! `source` is required; `id` (default: position in the stream), `name`
//! (default: the program's left-hand side), `emit`
//! (`cpp`/`rust`/`both`, default: the daemon's `--emit`), and
//! `deadline_ms` (default: the daemon's `--deadline-ms`) are optional.
//! Responses are one line per request, in completion order. Failures
//! carry a stable `kind` ([`crate::FailureKind::as_str`]) so callers
//! can tell load-shedding (`overloaded`, `deadline_exceeded`,
//! `shard_panic`, `shard_down` — retryable) from bad requests (`parse`,
//! `compile`, `bad_request` — not):
//!
//! ```text
//! {"id":1,"ok":true,"shard":0,"cache_hit":false,
//!  "files":[{"name":"x.cpp","content":"..."}],"report":"..."}
//! {"id":2,"ok":false,"kind":"parse","error":"parse error: ..."}
//! {"id":3,"ok":false,"shard":1,"kind":"overloaded","error":"..."}
//! ```
//!
//! A request may instead carry an `op` field for in-band service
//! queries (no `source` needed):
//!
//! * `{"op": "stats"}` — per-shard cache counters (see [`stats_line`]).
//!   The `frag_*` fields count the shard's cross-shape fragment store
//!   (sub-span lookups during pool builds, not requests):
//!
//!   ```text
//!   {"id":3,"ok":true,"op":"stats","shards":[{"shard":0,"requests":2,
//!    "hits":1,"misses":1,"evictions":0,"hit_rate":0.5000,"restored":0,
//!    "frag_hits":9,"frag_misses":3,"frag_evictions":0,
//!    "frag_hit_rate":0.7500,"frag_restored":0}],
//!    "total_requests":2,"total_hits":1,"total_frag_hits":9}
//!   ```
//!
//! * `{"op": "health"}` — per-shard liveness and robustness counters,
//!   answered even when shards are wedged or down (see [`health_line`]);
//!   `chain_hit_rate`/`frag_hit_rate` summarize the two cache layers
//!   from lock-free counters, and `p99_ms`/`queue_wait_p99_ms` are read
//!   straight off the shard's live latency histograms:
//!
//!   ```text
//!   {"id":4,"ok":true,"op":"health","shards":[{"shard":0,"state":"up",
//!    "restarts":1,"panics":1,"queue_depth":0,"deadline_exceeded":0,
//!    "shed":2,"chain_hit_rate":0.5000,"frag_hit_rate":0.7500,
//!    "p99_ms":12.287,"queue_wait_p99_ms":0.479}],"live":1}
//!   ```
//!
//! * `{"op": "metrics"}` — the full latency/counter snapshot (see
//!   [`metrics_line`]): per shard, the end-to-end / queue-wait /
//!   compile-time histograms as `count` + `p50`/`p90`/`p99`/`max`/
//!   `mean` milliseconds, plus every supervisor and cache counter, and
//!   service-wide merged percentiles:
//!
//!   ```text
//!   {"id":5,"ok":true,"op":"metrics","shards":[{"shard":0,"state":"up",
//!    "e2e_ms":{"count":4,"p50":1.151,"p90":11.263,"p99":11.263,
//!    "max":11.021,"mean":3.702},"queue_wait_ms":{...},
//!    "compile_ms":{...},"restarts":0,"panics":0,"deadline_exceeded":0,
//!    "shed":0,"chain_hits":2,"chain_misses":2,"frag_hits":0,
//!    "frag_misses":4}],"total_requests":4,"e2e_p50_ms":1.151,
//!    "e2e_p99_ms":11.263,"queue_wait_p99_ms":0.031,"late_drops":0}
//!   ```
//!
//! * `{"op": "fault", "spec": "panic:0:3,delay:5"}` — arm the
//!   fault-injection plan ([`crate::fault`]); only honored when the
//!   daemon runs with `--enable-faults`, acknowledged with
//!   [`ack_line`].
//!
//! The build environment vendors no JSON crate, so this module carries a
//! deliberately small hand parser: flat objects, string/unsigned-integer
//! /boolean/null values, full string escapes (including `\uXXXX` with
//! surrogate pairs). Nested containers are rejected — the protocol never
//! produces them in requests.

use crate::CompileResponse;
use std::fmt::Write as _;

/// A parsed request line, before defaults are applied.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RawRequest {
    /// Explicit request id, if given.
    pub id: Option<u64>,
    /// Artifact base name, if given.
    pub name: Option<String>,
    /// Emit selector (`cpp`/`rust`/`both`), if given.
    pub emit: Option<String>,
    /// In-band service operation (`stats`/`health`/`metrics`/`fault`),
    /// if given; such requests need no `source`.
    pub op: Option<String>,
    /// Fault spec for `{"op":"fault"}` requests.
    pub spec: Option<String>,
    /// Per-request deadline in milliseconds, if given.
    pub deadline_ms: Option<u64>,
    /// The `.gmc` program text.
    pub source: String,
}

/// Parse one request line.
///
/// # Errors
///
/// Returns a human-readable description of the malformed JSON or a
/// missing `source` field (compile requests only — `op` requests carry
/// no program).
pub fn parse_request(line: &str) -> Result<RawRequest, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let mut request = RawRequest::default();
    let mut have_source = false;
    p.ws();
    p.eat(b'{')?;
    p.ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.ws();
            let key = p.string()?;
            p.ws();
            p.eat(b':')?;
            p.ws();
            match key.as_str() {
                "id" => request.id = Some(p.unsigned()?),
                "name" => request.name = Some(p.string()?),
                "emit" => request.emit = Some(p.string()?),
                "op" => request.op = Some(p.string()?),
                "spec" => request.spec = Some(p.string()?),
                "deadline_ms" => request.deadline_ms = Some(p.unsigned()?),
                "source" => {
                    request.source = p.string()?;
                    have_source = true;
                }
                _ => p.skip_scalar()?,
            }
            p.ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected `,` or `}}`, got {}", show(other))),
            }
        }
    }
    p.ws();
    if p.pos != p.bytes.len() {
        return Err("trailing characters after the JSON object".into());
    }
    if !have_source && request.op.is_none() {
        return Err("request is missing the `source` field".into());
    }
    Ok(request)
}

/// Render one response line (newline not included).
#[must_use]
pub fn response_line(response: &CompileResponse) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"id\":{}", response.id);
    match &response.result {
        Ok(artifacts) => {
            out.push_str(",\"ok\":true");
            if let Some(shard) = response.shard {
                let _ = write!(out, ",\"shard\":{shard}");
            }
            let _ = write!(out, ",\"cache_hit\":{}", response.cache_hit);
            out.push_str(",\"files\":[");
            for (i, (name, contents)) in artifacts.files.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"content\":\"{}\"}}",
                    escape(name),
                    escape(contents)
                );
            }
            let _ = write!(out, "],\"report\":\"{}\"}}", escape(&artifacts.report));
        }
        Err(e) => {
            out.push_str(",\"ok\":false");
            if let Some(shard) = response.shard {
                let _ = write!(out, ",\"shard\":{shard}");
            }
            let _ = write!(
                out,
                ",\"kind\":\"{}\",\"error\":\"{}\"}}",
                e.kind.as_str(),
                escape(&e.message)
            );
        }
    }
    out
}

/// Render the response line of an in-band `{"op":"stats"}` request:
/// one object per live shard (hits/misses/evictions/hit-rate of its
/// compiled-chain cache, the `frag_*` counters of its cross-shape
/// fragment store, requests served, chains/fragments restored at
/// startup) plus service-wide totals.
#[must_use]
pub fn stats_line(id: u64, shards: &[crate::ShardStatus]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"id\":{id},\"ok\":true,\"op\":\"stats\",\"shards\":["
    );
    for (i, s) in shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"shard\":{},\"requests\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"hit_rate\":{:.4},\"restored\":{},\
             \"frag_hits\":{},\"frag_misses\":{},\"frag_evictions\":{},\
             \"frag_hit_rate\":{:.4},\"frag_restored\":{}}}",
            s.shard,
            s.requests,
            s.cache.hits,
            s.cache.misses,
            s.cache.evictions,
            s.cache.hit_rate(),
            s.cache.restored,
            s.frags.hits,
            s.frags.misses,
            s.frags.evictions,
            s.frags.hit_rate(),
            s.frags.restored,
        );
    }
    let total_requests: u64 = shards.iter().map(|s| s.requests).sum();
    let total_hits: u64 = shards.iter().map(|s| s.cache.hits).sum();
    let total_frag_hits: u64 = shards.iter().map(|s| s.frags.hits).sum();
    let _ = write!(
        out,
        "],\"total_requests\":{total_requests},\"total_hits\":{total_hits},\
         \"total_frag_hits\":{total_frag_hits}}}"
    );
    out
}

/// Render the response line of an in-band `{"op":"health"}` request:
/// liveness (`up`/`restarting`/`down`), restart/panic counts, current
/// queue depth, the deadline-exceeded/shed robustness counters, the
/// chain-cache/fragment-store hit rates, and the end-to-end/queue-wait
/// p99 latencies (milliseconds, upper-edge) of every shard, plus the
/// number of live (non-down) shards. Collected without touching the
/// work queues, so it answers even when shards are wedged.
#[must_use]
pub fn health_line(id: u64, shards: &[crate::ShardHealth]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"id\":{id},\"ok\":true,\"op\":\"health\",\"shards\":["
    );
    for (i, h) in shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"shard\":{},\"state\":\"{}\",\"restarts\":{},\"panics\":{},\
             \"queue_depth\":{},\"deadline_exceeded\":{},\"shed\":{},\
             \"chain_hit_rate\":{:.4},\"frag_hit_rate\":{:.4},\
             \"p99_ms\":{:.3},\"queue_wait_p99_ms\":{:.3}}}",
            h.shard,
            h.state.as_str(),
            h.restarts,
            h.panics,
            h.queue_depth,
            h.deadline_exceeded,
            h.shed,
            h.chain_hit_rate,
            h.frag_hit_rate,
            h.p99_ms,
            h.queue_wait_p99_ms,
        );
    }
    let live = shards
        .iter()
        .filter(|h| h.state != crate::ShardState::Down)
        .count();
    let _ = write!(out, "],\"live\":{live}}}");
    out
}

fn write_histogram_ms(out: &mut String, key: &str, s: &gmc_obs::Snapshot) {
    let _ = write!(
        out,
        "\"{key}\":{{\"count\":{},\"p50\":{:.3},\"p90\":{:.3},\"p99\":{:.3},\
         \"max\":{:.3},\"mean\":{:.3}}}",
        s.count,
        s.quantile_ms(0.50),
        s.quantile_ms(0.90),
        s.quantile_ms(0.99),
        s.max_ms(),
        s.mean_ms(),
    );
}

/// Render the response line of an in-band `{"op":"metrics"}` request:
/// per shard, the end-to-end (`e2e_ms`), queue-wait (`queue_wait_ms`),
/// and compile-time (`compile_ms`) histograms as count +
/// p50/p90/p99/max/mean milliseconds (upper-edge quantiles) plus the
/// supervisor and cache counters; then service-wide totals merged from
/// every shard's buckets and the submitter's `late_drops`.
#[must_use]
pub fn metrics_line(id: u64, metrics: &crate::ServiceMetrics) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"id\":{id},\"ok\":true,\"op\":\"metrics\",\"shards\":["
    );
    for (i, s) in metrics.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"shard\":{},\"state\":\"{}\",",
            s.shard,
            s.state.as_str()
        );
        write_histogram_ms(&mut out, "e2e_ms", &s.e2e);
        out.push(',');
        write_histogram_ms(&mut out, "queue_wait_ms", &s.queue_wait);
        out.push(',');
        write_histogram_ms(&mut out, "compile_ms", &s.compile_time);
        let _ = write!(
            out,
            ",\"restarts\":{},\"panics\":{},\"deadline_exceeded\":{},\"shed\":{},\
             \"chain_hits\":{},\"chain_misses\":{},\"frag_hits\":{},\"frag_misses\":{}}}",
            s.restarts,
            s.panics,
            s.deadline_exceeded,
            s.shed,
            s.chain_hits,
            s.chain_misses,
            s.frag_hits,
            s.frag_misses,
        );
    }
    let e2e = metrics.merged_e2e();
    let queue_wait = metrics.merged_queue_wait();
    let _ = write!(
        out,
        "],\"total_requests\":{},\"e2e_p50_ms\":{:.3},\"e2e_p99_ms\":{:.3},\
         \"queue_wait_p99_ms\":{:.3},\"late_drops\":{}}}",
        metrics.requests(),
        e2e.quantile_ms(0.50),
        e2e.quantile_ms(0.99),
        queue_wait.quantile_ms(0.99),
        metrics.late_drops,
    );
    out
}

/// Render a bare acknowledgement line for an in-band operation with no
/// payload (today: `{"op":"fault"}`).
#[must_use]
pub fn ack_line(id: u64, op: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"op\":\"{}\"}}", escape(op))
}

/// Render a [`TransportSnapshot`](crate::transport::TransportSnapshot)
/// as a JSON object: open/accepted/closed connection counters, the
/// backpressure counters (shed/slow-closed/idle-reaped/refused/
/// written-off), plus one `{"conn":N,"in_flight":N}` entry per open
/// connection in accept order.
#[must_use]
pub fn transport_json(transport: &crate::transport::TransportSnapshot) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"open\":{},\"accepted\":{},\"closed\":{},\"shed\":{},\"slow_closed\":{},\
         \"idle_reaped\":{},\"refused\":{},\"written_off\":{},\"connections\":[",
        transport.open,
        transport.accepted,
        transport.closed,
        transport.conn_shed,
        transport.conn_slow_closed,
        transport.conn_idle_reaped,
        transport.conn_refused,
        transport.conn_written_off,
    );
    for (i, (conn, in_flight)) in transport.connections.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"conn\":{conn},\"in_flight\":{in_flight}}}");
    }
    out.push_str("]}");
    out
}

/// Splice an extra `"transport"` field into a rendered response line
/// (the socket daemon's health/metrics responses carry the transport
/// counters; the stdin daemon's lines are unchanged).
fn with_transport(mut line: String, transport: &crate::transport::TransportSnapshot) -> String {
    debug_assert!(line.ends_with('}'));
    line.pop();
    let _ = write!(line, ",\"transport\":{}}}", transport_json(transport));
    line
}

/// [`health_line`] plus a `"transport"` object of connection counters —
/// what the socket daemon answers for `{"op":"health"}`.
#[must_use]
pub fn health_line_with_transport(
    id: u64,
    shards: &[crate::ShardHealth],
    transport: &crate::transport::TransportSnapshot,
) -> String {
    with_transport(health_line(id, shards), transport)
}

/// [`metrics_line`] plus a `"transport"` object of connection counters —
/// what the socket daemon answers for `{"op":"metrics"}`.
#[must_use]
pub fn metrics_line_with_transport(
    id: u64,
    metrics: &crate::ServiceMetrics,
    transport: &crate::transport::TransportSnapshot,
) -> String {
    with_transport(metrics_line(id, metrics), transport)
}

/// JSON-escape a string (quotes, backslashes, and control characters).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn show(b: Option<u8>) -> String {
    match b {
        Some(b) => format!("`{}`", b as char),
        None => "end of line".to_string(),
    }
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .peek()
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected `{}`, got {}", want as char, show(other))),
        }
    }

    fn unsigned(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number, got {}", show(self.peek())));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are utf8")
            .parse()
            .map_err(|_| "number out of range".to_string())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .next()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| "bad \\u escape".to_string())?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if self.next() != Some(b'\\') || self.next() != Some(b'u') {
                                return Err("lone high surrogate".into());
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("bad low surrogate".into());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(char::from_u32(code).ok_or_else(|| "bad \\u escape".to_string())?);
                    }
                    other => return Err(format!("bad escape {}", show(other))),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|b| (b & 0xC0) == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid utf8 in string".to_string())?;
                    out.push_str(s);
                }
            }
        }
    }

    /// Skip an ignored scalar value (string, number, boolean, null).
    fn skip_scalar(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b) if b.is_ascii_digit() || b == b'-' => {
                self.pos += 1;
                while self
                    .peek()
                    .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
                {
                    self.pos += 1;
                }
                Ok(())
            }
            other => Err(format!(
                "unsupported value starting with {} (nested objects/arrays are not part of the protocol)",
                show(other)
            )),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("bad literal, expected `{word}`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Artifacts;

    #[test]
    fn transport_object_renders_counters_and_connections() {
        let snapshot = crate::transport::TransportSnapshot {
            open: 2,
            accepted: 5,
            closed: 3,
            connections: vec![(4, 1), (5, 0)],
            conn_shed: 9,
            conn_slow_closed: 2,
            conn_idle_reaped: 4,
            conn_refused: 1,
            conn_written_off: 6,
        };
        assert_eq!(
            transport_json(&snapshot),
            r#"{"open":2,"accepted":5,"closed":3,"shed":9,"slow_closed":2,"idle_reaped":4,"refused":1,"written_off":6,"connections":[{"conn":4,"in_flight":1},{"conn":5,"in_flight":0}]}"#
        );
        let empty = crate::transport::TransportSnapshot::default();
        assert_eq!(
            transport_json(&empty),
            r#"{"open":0,"accepted":0,"closed":0,"shed":0,"slow_closed":0,"idle_reaped":0,"refused":0,"written_off":0,"connections":[]}"#
        );
    }

    #[test]
    fn transport_field_is_spliced_into_health_and_metrics_lines() {
        let snapshot = crate::transport::TransportSnapshot {
            open: 1,
            accepted: 1,
            closed: 0,
            connections: vec![(1, 0)],
            ..crate::transport::TransportSnapshot::default()
        };
        let health = health_line_with_transport(9, &[], &snapshot);
        assert_eq!(
            health,
            r#"{"id":9,"ok":true,"op":"health","shards":[],"live":0,"transport":{"open":1,"accepted":1,"closed":0,"shed":0,"slow_closed":0,"idle_reaped":0,"refused":0,"written_off":0,"connections":[{"conn":1,"in_flight":0}]}}"#
        );
        assert!(health.ends_with("}}"));
        let plain = health_line(9, &[]);
        assert!(health.starts_with(&plain[..plain.len() - 1]));
    }

    #[test]
    fn parses_a_full_request() {
        let line = r#"{"id": 7, "name": "kalman", "emit": "both", "source": "X := A * B;\n", "extra": null}"#;
        let r = parse_request(line).unwrap();
        assert_eq!(r.id, Some(7));
        assert_eq!(r.name.as_deref(), Some("kalman"));
        assert_eq!(r.emit.as_deref(), Some("both"));
        assert_eq!(r.source, "X := A * B;\n");
    }

    #[test]
    fn defaults_stay_unset() {
        let r = parse_request(r#"{"source":"X := A;"}"#).unwrap();
        assert_eq!(
            r,
            RawRequest {
                id: None,
                name: None,
                emit: None,
                op: None,
                spec: None,
                deadline_ms: None,
                source: "X := A;".into(),
            }
        );
    }

    #[test]
    fn deadlines_and_fault_specs_parse() {
        let r = parse_request(r#"{"id": 2, "deadline_ms": 250, "source": "X := A;"}"#).unwrap();
        assert_eq!(r.deadline_ms, Some(250));
        let r = parse_request(r#"{"op": "fault", "spec": "panic:0:3,delay:5"}"#).unwrap();
        assert_eq!(r.op.as_deref(), Some("fault"));
        assert_eq!(r.spec.as_deref(), Some("panic:0:3,delay:5"));
    }

    #[test]
    fn op_requests_need_no_source() {
        let r = parse_request(r#"{"op": "stats"}"#).unwrap();
        assert_eq!(r.op.as_deref(), Some("stats"));
        assert_eq!(r.id, None);
        assert!(r.source.is_empty());
        let r = parse_request(r#"{"id": 9, "op": "stats"}"#).unwrap();
        assert_eq!((r.id, r.op.as_deref()), (Some(9), Some("stats")));
        // A plain compile request still requires `source`.
        assert!(parse_request(r#"{"id": 9}"#).is_err());
    }

    #[test]
    fn stats_lines_render_per_shard_counters() {
        let shards = vec![
            crate::ShardStatus {
                shard: 0,
                requests: 3,
                cache: gmc_core::CacheStats {
                    hits: 1,
                    misses: 2,
                    evictions: 0,
                    restored: 0,
                },
                frags: gmc_core::FragCacheStats {
                    hits: 9,
                    misses: 3,
                    inserts: 3,
                    evictions: 0,
                    restored: 0,
                },
            },
            crate::ShardStatus {
                shard: 1,
                requests: 1,
                cache: gmc_core::CacheStats {
                    hits: 0,
                    misses: 1,
                    evictions: 0,
                    restored: 1,
                },
                frags: gmc_core::FragCacheStats {
                    hits: 4,
                    misses: 4,
                    inserts: 2,
                    evictions: 1,
                    restored: 2,
                },
            },
        ];
        let line = stats_line(7, &shards);
        assert_eq!(
            line,
            "{\"id\":7,\"ok\":true,\"op\":\"stats\",\"shards\":[\
             {\"shard\":0,\"requests\":3,\"hits\":1,\"misses\":2,\"evictions\":0,\
             \"hit_rate\":0.3333,\"restored\":0,\
             \"frag_hits\":9,\"frag_misses\":3,\"frag_evictions\":0,\
             \"frag_hit_rate\":0.7500,\"frag_restored\":0},\
             {\"shard\":1,\"requests\":1,\"hits\":0,\"misses\":1,\"evictions\":0,\
             \"hit_rate\":0.0000,\"restored\":1,\
             \"frag_hits\":4,\"frag_misses\":4,\"frag_evictions\":1,\
             \"frag_hit_rate\":0.5000,\"frag_restored\":2}],\
             \"total_requests\":4,\"total_hits\":1,\"total_frag_hits\":13}"
        );
    }

    #[test]
    fn escapes_round_trip_through_parse() {
        let source = "line1\nline2\t\"quoted\" \\ backslash \u{8} ünïcode 🦀";
        let line = format!(r#"{{"source":"{}"}}"#, escape(source));
        let r = parse_request(&line).unwrap();
        assert_eq!(r.source, source);
        // Explicit \u escapes, including a surrogate pair.
        let r = parse_request("{\"source\":\"\\u0041\\uD83E\\uDD80\"}").unwrap();
        assert_eq!(r.source, "A\u{1F980}");
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "{",
            "{}",
            r#"{"id": 1}"#,
            r#"{"source": "x" "#,
            r#"{"source": "x"} trailing"#,
            r#"{"source": ["x"]}"#,
            r#"{"id": -3, "source": "x"}"#,
            r#"{"source": "\uD800"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn response_lines_are_valid_and_escaped() {
        let ok = CompileResponse {
            id: 3,
            shard: Some(1),
            cache_hit: true,
            result: Ok(Artifacts {
                files: vec![("x.cpp".into(), "void x();\n// \"quoted\"".into())],
                report: "chain G\n".into(),
            }),
        };
        let line = response_line(&ok);
        assert_eq!(
            line,
            "{\"id\":3,\"ok\":true,\"shard\":1,\"cache_hit\":true,\"files\":[{\"name\":\"x.cpp\",\
             \"content\":\"void x();\\n// \\\"quoted\\\"\"}],\"report\":\"chain G\\n\"}"
        );
        let err = CompileResponse::failure(4, crate::FailureKind::Parse, "parse error: line 1");
        assert_eq!(
            response_line(&err),
            "{\"id\":4,\"ok\":false,\"kind\":\"parse\",\"error\":\"parse error: line 1\"}"
        );
        let shed = CompileResponse {
            id: 5,
            shard: Some(1),
            cache_hit: false,
            result: Err(crate::Failure::new(
                crate::FailureKind::Overloaded,
                "shard 1 queue is full",
            )),
        };
        assert_eq!(
            response_line(&shed),
            "{\"id\":5,\"ok\":false,\"shard\":1,\"kind\":\"overloaded\",\
             \"error\":\"shard 1 queue is full\"}"
        );
    }

    #[test]
    fn health_lines_render_liveness_and_counters() {
        let shards = vec![
            crate::ShardHealth {
                shard: 0,
                state: crate::ShardState::Up,
                restarts: 1,
                panics: 1,
                queue_depth: 2,
                deadline_exceeded: 0,
                shed: 3,
                chain_hit_rate: 0.5,
                frag_hit_rate: 0.75,
                p99_ms: 12.287,
                queue_wait_p99_ms: 0.479,
            },
            crate::ShardHealth {
                shard: 1,
                state: crate::ShardState::Down,
                restarts: 0,
                panics: 5,
                queue_depth: 0,
                deadline_exceeded: 4,
                shed: 0,
                chain_hit_rate: 0.0,
                frag_hit_rate: 0.0,
                p99_ms: 0.0,
                queue_wait_p99_ms: 0.0,
            },
        ];
        assert_eq!(
            health_line(9, &shards),
            "{\"id\":9,\"ok\":true,\"op\":\"health\",\"shards\":[\
             {\"shard\":0,\"state\":\"up\",\"restarts\":1,\"panics\":1,\
             \"queue_depth\":2,\"deadline_exceeded\":0,\"shed\":3,\
             \"chain_hit_rate\":0.5000,\"frag_hit_rate\":0.7500,\
             \"p99_ms\":12.287,\"queue_wait_p99_ms\":0.479},\
             {\"shard\":1,\"state\":\"down\",\"restarts\":0,\"panics\":5,\
             \"queue_depth\":0,\"deadline_exceeded\":4,\"shed\":0,\
             \"chain_hit_rate\":0.0000,\"frag_hit_rate\":0.0000,\
             \"p99_ms\":0.000,\"queue_wait_p99_ms\":0.000}],\"live\":1}"
        );
        assert_eq!(
            ack_line(3, "fault"),
            "{\"id\":3,\"ok\":true,\"op\":\"fault\"}"
        );
    }

    #[test]
    fn metrics_lines_render_histograms_and_counters() {
        let mut e2e = gmc_obs::Snapshot::empty();
        // Exact values in the linear bucket region (< 8 us) so the
        // pinned quantiles are reproducible: 2, 4, 6 us.
        e2e.record_us(2);
        e2e.record_us(4);
        e2e.record_us(6);
        let metrics = crate::ServiceMetrics {
            shards: vec![crate::ShardMetrics {
                shard: 0,
                state: crate::ShardState::Up,
                e2e,
                queue_wait: gmc_obs::Snapshot::empty(),
                compile_time: gmc_obs::Snapshot::empty(),
                restarts: 1,
                panics: 2,
                deadline_exceeded: 3,
                shed: 4,
                chain_hits: 5,
                chain_misses: 6,
                frag_hits: 7,
                frag_misses: 8,
            }],
            late_drops: 9,
        };
        assert_eq!(
            metrics_line(11, &metrics),
            "{\"id\":11,\"ok\":true,\"op\":\"metrics\",\"shards\":[\
             {\"shard\":0,\"state\":\"up\",\
             \"e2e_ms\":{\"count\":3,\"p50\":0.004,\"p90\":0.006,\"p99\":0.006,\
             \"max\":0.006,\"mean\":0.004},\
             \"queue_wait_ms\":{\"count\":0,\"p50\":0.000,\"p90\":0.000,\"p99\":0.000,\
             \"max\":0.000,\"mean\":0.000},\
             \"compile_ms\":{\"count\":0,\"p50\":0.000,\"p90\":0.000,\"p99\":0.000,\
             \"max\":0.000,\"mean\":0.000},\
             \"restarts\":1,\"panics\":2,\"deadline_exceeded\":3,\"shed\":4,\
             \"chain_hits\":5,\"chain_misses\":6,\"frag_hits\":7,\"frag_misses\":8}],\
             \"total_requests\":3,\"e2e_p50_ms\":0.004,\"e2e_p99_ms\":0.006,\
             \"queue_wait_p99_ms\":0.000,\"late_drops\":9}"
        );
    }

    #[test]
    fn prometheus_dump_renders_counters_and_buckets() {
        let mut e2e = gmc_obs::Snapshot::empty();
        e2e.record_us(1_000);
        e2e.record_us(50_000);
        let metrics = crate::ServiceMetrics {
            shards: vec![crate::ShardMetrics {
                shard: 0,
                state: crate::ShardState::Up,
                e2e,
                queue_wait: gmc_obs::Snapshot::empty(),
                compile_time: gmc_obs::Snapshot::empty(),
                restarts: 0,
                panics: 1,
                deadline_exceeded: 0,
                shed: 0,
                chain_hits: 1,
                chain_misses: 1,
                frag_hits: 0,
                frag_misses: 0,
            }],
            late_drops: 0,
        };
        let text = metrics.to_prometheus();
        assert!(text.contains("# TYPE gmc_requests_total counter"));
        assert!(text.contains("gmc_requests_total{shard=\"0\"} 2"));
        assert!(text.contains("gmc_panics_total{shard=\"0\"} 1"));
        assert!(text.contains("gmc_late_drops_total 0"));
        assert!(text.contains("# TYPE gmc_request_seconds histogram"));
        assert!(text.contains("gmc_request_seconds_bucket{shard=\"0\",le=\"+Inf\"} 2"));
        assert!(text.contains("gmc_request_seconds_count{shard=\"0\"} 2"));
        // One TYPE header per metric, no matter how many label sets.
        assert_eq!(text.matches("# TYPE gmc_request_seconds").count(), 1);
    }
}
