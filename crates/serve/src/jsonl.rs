//! Minimal JSONL wire format for the `gmcc --serve` daemon.
//!
//! One JSON object per line. Requests are flat objects:
//!
//! ```text
//! {"id": 1, "name": "x", "emit": "both", "source": "Matrix A <General, Singular>; ..."}
//! ```
//!
//! `source` is required; `id` (default: position in the stream), `name`
//! (default: the program's left-hand side), and `emit`
//! (`cpp`/`rust`/`both`, default: the daemon's `--emit`) are optional.
//! Responses are one line per request, in completion order:
//!
//! ```text
//! {"id":1,"ok":true,"shard":0,"cache_hit":false,
//!  "files":[{"name":"x.cpp","content":"..."}],"report":"..."}
//! {"id":2,"ok":false,"error":"parse error: ..."}
//! ```
//!
//! The build environment vendors no JSON crate, so this module carries a
//! deliberately small hand parser: flat objects, string/unsigned-integer
//! /boolean/null values, full string escapes (including `\uXXXX` with
//! surrogate pairs). Nested containers are rejected — the protocol never
//! produces them in requests.

use crate::CompileResponse;
use std::fmt::Write as _;

/// A parsed request line, before defaults are applied.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RawRequest {
    /// Explicit request id, if given.
    pub id: Option<u64>,
    /// Artifact base name, if given.
    pub name: Option<String>,
    /// Emit selector (`cpp`/`rust`/`both`), if given.
    pub emit: Option<String>,
    /// The `.gmc` program text.
    pub source: String,
}

/// Parse one request line.
///
/// # Errors
///
/// Returns a human-readable description of the malformed JSON or a
/// missing `source` field.
pub fn parse_request(line: &str) -> Result<RawRequest, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let mut request = RawRequest::default();
    let mut have_source = false;
    p.ws();
    p.eat(b'{')?;
    p.ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.ws();
            let key = p.string()?;
            p.ws();
            p.eat(b':')?;
            p.ws();
            match key.as_str() {
                "id" => request.id = Some(p.unsigned()?),
                "name" => request.name = Some(p.string()?),
                "emit" => request.emit = Some(p.string()?),
                "source" => {
                    request.source = p.string()?;
                    have_source = true;
                }
                _ => p.skip_scalar()?,
            }
            p.ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected `,` or `}}`, got {}", show(other))),
            }
        }
    }
    p.ws();
    if p.pos != p.bytes.len() {
        return Err("trailing characters after the JSON object".into());
    }
    if !have_source {
        return Err("request is missing the `source` field".into());
    }
    Ok(request)
}

/// Render one response line (newline not included).
#[must_use]
pub fn response_line(response: &CompileResponse) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"id\":{}", response.id);
    match &response.result {
        Ok(artifacts) => {
            out.push_str(",\"ok\":true");
            if let Some(shard) = response.shard {
                let _ = write!(out, ",\"shard\":{shard}");
            }
            let _ = write!(out, ",\"cache_hit\":{}", response.cache_hit);
            out.push_str(",\"files\":[");
            for (i, (name, contents)) in artifacts.files.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"content\":\"{}\"}}",
                    escape(name),
                    escape(contents)
                );
            }
            let _ = write!(out, "],\"report\":\"{}\"}}", escape(&artifacts.report));
        }
        Err(e) => {
            let _ = write!(out, ",\"ok\":false,\"error\":\"{}\"}}", escape(e));
        }
    }
    out
}

/// JSON-escape a string (quotes, backslashes, and control characters).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn show(b: Option<u8>) -> String {
    match b {
        Some(b) => format!("`{}`", b as char),
        None => "end of line".to_string(),
    }
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .peek()
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected `{}`, got {}", want as char, show(other))),
        }
    }

    fn unsigned(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number, got {}", show(self.peek())));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are utf8")
            .parse()
            .map_err(|_| "number out of range".to_string())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .next()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| "bad \\u escape".to_string())?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if self.next() != Some(b'\\') || self.next() != Some(b'u') {
                                return Err("lone high surrogate".into());
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("bad low surrogate".into());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(char::from_u32(code).ok_or_else(|| "bad \\u escape".to_string())?);
                    }
                    other => return Err(format!("bad escape {}", show(other))),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|b| (b & 0xC0) == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid utf8 in string".to_string())?;
                    out.push_str(s);
                }
            }
        }
    }

    /// Skip an ignored scalar value (string, number, boolean, null).
    fn skip_scalar(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b) if b.is_ascii_digit() || b == b'-' => {
                self.pos += 1;
                while self
                    .peek()
                    .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
                {
                    self.pos += 1;
                }
                Ok(())
            }
            other => Err(format!(
                "unsupported value starting with {} (nested objects/arrays are not part of the protocol)",
                show(other)
            )),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("bad literal, expected `{word}`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Artifacts;

    #[test]
    fn parses_a_full_request() {
        let line = r#"{"id": 7, "name": "kalman", "emit": "both", "source": "X := A * B;\n", "extra": null}"#;
        let r = parse_request(line).unwrap();
        assert_eq!(r.id, Some(7));
        assert_eq!(r.name.as_deref(), Some("kalman"));
        assert_eq!(r.emit.as_deref(), Some("both"));
        assert_eq!(r.source, "X := A * B;\n");
    }

    #[test]
    fn defaults_stay_unset() {
        let r = parse_request(r#"{"source":"X := A;"}"#).unwrap();
        assert_eq!(
            r,
            RawRequest {
                id: None,
                name: None,
                emit: None,
                source: "X := A;".into(),
            }
        );
    }

    #[test]
    fn escapes_round_trip_through_parse() {
        let source = "line1\nline2\t\"quoted\" \\ backslash \u{8} ünïcode 🦀";
        let line = format!(r#"{{"source":"{}"}}"#, escape(source));
        let r = parse_request(&line).unwrap();
        assert_eq!(r.source, source);
        // Explicit \u escapes, including a surrogate pair.
        let r = parse_request("{\"source\":\"\\u0041\\uD83E\\uDD80\"}").unwrap();
        assert_eq!(r.source, "A\u{1F980}");
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "{",
            "{}",
            r#"{"id": 1}"#,
            r#"{"source": "x" "#,
            r#"{"source": "x"} trailing"#,
            r#"{"source": ["x"]}"#,
            r#"{"id": -3, "source": "x"}"#,
            r#"{"source": "\uD800"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn response_lines_are_valid_and_escaped() {
        let ok = CompileResponse {
            id: 3,
            shard: Some(1),
            cache_hit: true,
            result: Ok(Artifacts {
                files: vec![("x.cpp".into(), "void x();\n// \"quoted\"".into())],
                report: "chain G\n".into(),
            }),
        };
        let line = response_line(&ok);
        assert_eq!(
            line,
            "{\"id\":3,\"ok\":true,\"shard\":1,\"cache_hit\":true,\"files\":[{\"name\":\"x.cpp\",\
             \"content\":\"void x();\\n// \\\"quoted\\\"\"}],\"report\":\"chain G\\n\"}"
        );
        let err = CompileResponse {
            id: 4,
            shard: None,
            cache_hit: false,
            result: Err("parse error: line 1".into()),
        };
        assert_eq!(
            response_line(&err),
            "{\"id\":4,\"ok\":false,\"error\":\"parse error: line 1\"}"
        );
    }
}
