//! Shard supervision: the worker loop that keeps a shard alive through
//! panics.
//!
//! Each shard runs [`shard_main`] on its own thread. The loop owns one
//! [`CompileSession`] and wraps every compile attempt in
//! [`std::panic::catch_unwind`], so a panic — injected by
//! [`fault`](crate::fault) or real — is a *request-level* failure, not a
//! shard death:
//!
//! ```text
//!            ┌────────────────────────────── panic ───────────────┐
//!            ▼                                                    │
//!  Up ── compile jobs ──► panic caught ── failures < K ──► Restarting
//!                              │                                │ backoff
//!                              │ failures ≥ K in window         │ (capped
//!                              ▼                                │  2^n)
//!                            Down ◄─────────────────────────────┘
//!                       (circuit open: queued jobs answered
//!                        `shard_down`, submitter routes new
//!                        traffic to the next live shard)
//! ```
//!
//! On each restart the poisoned session is discarded (its cumulative
//! cache counters are read off first and carried forward — plain `u64`
//! fields are safe to read after a panic) and a **fresh** session is
//! rebuilt, rewarmed from the service's latest snapshot via
//! [`CompileSession::restore_filtered`] filtered to the shapes that
//! route here. With a current snapshot, a restart costs one backoff
//! sleep plus a re-lowering pass — the first repeat request afterwards
//! is a cache hit, not a cold compile.
//!
//! Failures are counted in a sliding window; once `max_failures` accrue
//! the circuit breaker opens and the shard goes [`ShardState::Down`]
//! permanently (for this process): already-queued jobs are answered
//! with in-band `shard_down` errors and the submitter's routing falls
//! over to the next live shard, so traffic is degraded, never dropped
//! without an answer.

use crate::fault::FaultPlan;
use crate::service::{Job, Response, ShardStatus};
use crate::{route, Artifacts, Emit, Failure, FailureKind};
use gmc_codegen::{emit_cpp_into, emit_rust_into};
use gmc_core::{
    CacheStats, CompileOptions, CompileSession, FragCacheStats, SessionSnapshot, Stage,
};
use gmc_obs::Histogram;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// When a supervised shard restarts after a panic.
#[derive(Debug, Clone)]
pub struct RestartPolicy {
    /// Backoff before the first restart; doubles per consecutive
    /// failure in the window.
    pub backoff: Duration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Duration,
    /// Circuit breaker: after this many failures inside `window`, the
    /// shard stays down and routing falls over to its neighbors.
    pub max_failures: u32,
    /// Sliding window for counting failures toward the breaker.
    pub window: Duration,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            backoff: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            max_failures: 5,
            window: Duration::from_secs(10),
        }
    }
}

/// Liveness of one supervised shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Serving normally.
    Up,
    /// Between a caught panic and the rebuilt session (backoff +
    /// rewarm); still routable — queued work runs after the restart.
    Restarting,
    /// Circuit breaker open (or worker thread dead): not routable.
    Down,
}

impl ShardState {
    /// Wire name (`up` / `restarting` / `down`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ShardState::Up => "up",
            ShardState::Restarting => "restarting",
            ShardState::Down => "down",
        }
    }

    fn from_u8(v: u8) -> ShardState {
        match v {
            0 => ShardState::Up,
            1 => ShardState::Restarting,
            _ => ShardState::Down,
        }
    }
}

/// Health of one shard, collected **without** riding the work queue
/// (see [`CompileService::health`](crate::CompileService::health)) so a
/// wedged or down shard still reports.
#[derive(Debug, Clone, Copy)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Liveness.
    pub state: ShardState,
    /// Completed supervisor restarts (panics recovered from).
    pub restarts: u64,
    /// Panics caught (each costs its in-flight request).
    pub panics: u64,
    /// Requests currently queued or in flight on this shard.
    pub queue_depth: usize,
    /// Requests answered `deadline_exceeded` (at dequeue or written off
    /// by the submitter).
    pub deadline_exceeded: u64,
    /// Requests shed with `overloaded` because this shard's queue was
    /// at capacity.
    pub shed: u64,
    /// Fraction of compiles served from the compiled-chain cache
    /// (cumulative across restarts; `0.0` before any compile).
    pub chain_hit_rate: f64,
    /// Fraction of fragment-store lookups served from the store
    /// (cumulative across restarts; `0.0` before any lookup).
    pub frag_hit_rate: f64,
    /// Upper-edge p99 of end-to-end request latency on this shard,
    /// milliseconds (`0.0` before any request). Read from the shard's
    /// lock-free latency histogram, so it reports even when the shard
    /// is wedged.
    pub p99_ms: f64,
    /// Upper-edge p99 of the time requests spent queued before this
    /// shard dequeued them, milliseconds.
    pub queue_wait_p99_ms: f64,
}

/// Counters a shard and the submitter share lock-free.
#[derive(Debug, Default)]
pub(crate) struct ShardShared {
    state: AtomicU8,
    pub(crate) restarts: AtomicU64,
    pub(crate) panics: AtomicU64,
    pub(crate) deadline_exceeded: AtomicU64,
    pub(crate) shed: AtomicU64,
    /// Cumulative chain-cache and fragment-store counters, published by
    /// the worker after every compile so [`ShardHealth`] hit rates stay
    /// pure atomic reads (a wedged shard still reports its last state).
    pub(crate) chain_hits: AtomicU64,
    pub(crate) chain_misses: AtomicU64,
    pub(crate) frag_hits: AtomicU64,
    pub(crate) frag_misses: AtomicU64,
    /// Compile attempts, for the fault plan's deterministic `nth`.
    compile_attempts: AtomicU64,
    /// End-to-end latency of every *response* attributed to this shard
    /// (served, panicked, expired, shed, written off), recorded by the
    /// submitter exactly once per response so the count balances against
    /// delivered responses even when a written-off request is also
    /// answered late by the shard. Deliberately *not* gated by
    /// `GMC_TRACE`: recording is a handful of relaxed atomics per
    /// request, and the health/metrics endpoints depend on these
    /// histograms staying live.
    pub(crate) e2e: Histogram,
    /// Submission-to-dequeue wait, recorded by the worker. Counts
    /// *dequeues* — a request written off by the submitter but still
    /// dequeued late records here, so this count can exceed `e2e`'s.
    pub(crate) queue_wait: Histogram,
    /// Wall-clock of the compile + emit attempt (the `catch_unwind`
    /// envelope), cache hits included.
    pub(crate) compile_time: Histogram,
}

impl ShardShared {
    pub(crate) fn state(&self) -> ShardState {
        ShardState::from_u8(self.state.load(Ordering::Acquire))
    }

    pub(crate) fn set_state(&self, s: ShardState) {
        self.state.store(s as u8, Ordering::Release);
    }

    /// Publish the cumulative cache counters (worker thread only).
    fn publish_counters(&self, cache: &CacheStats, frags: &FragCacheStats) {
        self.chain_hits.store(cache.hits, Ordering::Relaxed);
        self.chain_misses.store(cache.misses, Ordering::Relaxed);
        self.frag_hits.store(frags.hits, Ordering::Relaxed);
        self.frag_misses.store(frags.misses, Ordering::Relaxed);
    }
}

/// Everything one shard worker owns; [`shard_main`] consumes it.
pub(crate) struct ShardCtx {
    pub(crate) index: usize,
    pub(crate) shards: usize,
    pub(crate) jobs: Receiver<Job>,
    pub(crate) results: Sender<Response>,
    pub(crate) options: CompileOptions,
    pub(crate) cache_capacity: usize,
    pub(crate) frag_cache_capacity: usize,
    pub(crate) shared: Arc<ShardShared>,
    /// Latest merged snapshot, refreshed by
    /// [`CompileService::snapshot`](crate::CompileService::snapshot);
    /// restarts rewarm from it.
    pub(crate) latest: Arc<Mutex<Option<Arc<SessionSnapshot>>>>,
    pub(crate) policy: RestartPolicy,
    pub(crate) faults: FaultPlan,
    /// Log the per-stage breakdown of any request slower than this to
    /// stderr (`gmcc --slow-ms`); `None` disables the slow-request log.
    pub(crate) slow: Option<Duration>,
}

/// Per-shard counters returned by
/// [`CompileService::shutdown`](crate::CompileService::shutdown).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Compile requests this shard answered (including panicked and
    /// deadline-expired ones). Work the transport *wrote off* for a
    /// slow-closed connection still counts here: shards never cancel
    /// admitted work, the write-off only drops the reply at the
    /// connection layer — which is what makes `requests` equal the
    /// admitted-request count in the transport chaos invariants.
    pub requests: u64,
    /// Cumulative compiled-chain cache counters, carried across
    /// supervisor restarts.
    pub cache: CacheStats,
    /// Cumulative cross-shape fragment-store counters, carried across
    /// supervisor restarts.
    pub frags: FragCacheStats,
    /// Panics caught.
    pub panics: u64,
    /// Restarts completed.
    pub restarts: u64,
}

impl ShardCtx {
    /// Build a fresh session, rewarmed from the latest snapshot when one
    /// exists. Returns the session and how many chains were restored.
    fn build_session(&self) -> (CompileSession, u64) {
        let mut session = CompileSession::with_options(self.options.clone());
        session.set_chain_cache_capacity(self.cache_capacity);
        session.set_fragment_cache_capacity(self.frag_cache_capacity);
        let snap = self.latest.lock().expect("latest snapshot lock").clone();
        if let Some(snap) = snap {
            // A rebuild failure (corrupted decisions) degrades to a
            // genuinely cold shard — restore inserts nothing on error —
            // and is worth a diagnostic, since the operator should
            // delete the snapshot.
            let index = self.index;
            match session.restore_filtered(&snap, |shape| route(shape, self.shards) == index) {
                Ok(_) => {}
                Err(e) => {
                    eprintln!("gmc-serve: shard {index}: snapshot restore failed: {e}");
                }
            }
        }
        let restored = session.cache_stats().restored;
        (session, restored)
    }
}

/// The supervised worker loop (see the [module docs](self)).
pub(crate) fn shard_main(ctx: ShardCtx) -> ShardStats {
    let index = ctx.index;
    let (initial, _) = ctx.build_session();
    ctx.shared
        .publish_counters(&initial.cache_stats(), &initial.fragment_cache_stats());
    ctx.shared.set_state(ShardState::Up);
    // `None` while the circuit breaker is open; the loop keeps draining
    // the queue and answering `shard_down` so nothing hangs.
    let mut session: Option<CompileSession> = Some(initial);
    let mut stats = ShardStats::default();
    // Counters of sessions discarded after a panic; reads of plain u64
    // fields are safe on a poisoned session.
    let mut carried = CacheStats::default();
    let mut carried_frags = FragCacheStats::default();
    let mut failures: Vec<Instant> = Vec::new();
    let mut buf = String::new();

    while let Ok(job) = ctx.jobs.recv() {
        match job {
            Job::Compile(job) => {
                stats.requests += 1;
                ctx.shared.queue_wait.record(job.submitted.elapsed());
                // Deadline at dequeue: a request that went stale in the
                // queue is answered without compiling — the work would
                // be wasted and would stall everything behind it.
                if job.deadline.is_some_and(|d| Instant::now() > d) {
                    ctx.shared.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                    let _ = ctx.results.send(Response {
                        seq: Some(job.seq),
                        response: crate::CompileResponse::failure_on(
                            job.id,
                            Some(index),
                            FailureKind::DeadlineExceeded,
                            "deadline expired before the shard reached the request",
                        ),
                    });
                    continue;
                }
                let Some(live) = session.as_mut() else {
                    // Breaker open: fail fast, exactly one response.
                    let _ = ctx.results.send(Response {
                        seq: Some(job.seq),
                        response: crate::CompileResponse::failure_on(
                            job.id,
                            Some(index),
                            FailureKind::ShardDown,
                            format!("shard {index} is down (circuit breaker open)"),
                        ),
                    });
                    continue;
                };
                let nth = ctx.shared.compile_attempts.fetch_add(1, Ordering::Relaxed) + 1;
                let faults = &ctx.faults;
                // The slow-request log reports the per-stage delta, so
                // the pre-compile profile is cloned off only when the
                // log is armed and the session traces.
                let profile_before = match ctx.slow {
                    Some(_) if live.tracing_enabled() => Some(live.stage_profile().clone()),
                    _ => None,
                };
                let compile_started = Instant::now();
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    faults.before_compile(index, nth);
                    serve_compile(live, &mut buf, &job)
                }));
                ctx.shared.compile_time.record(compile_started.elapsed());
                let elapsed = job.submitted.elapsed();
                if let Some(threshold) = ctx.slow {
                    if elapsed >= threshold && outcome.is_ok() {
                        let breakdown = profile_before
                            .as_ref()
                            .map(|before| {
                                let alive = session.as_ref().expect("session was live");
                                alive.stage_profile().since(before).render(&format!(
                                    "request {} (shape n = {})",
                                    job.id,
                                    job.shape.len()
                                ))
                            })
                            .unwrap_or_else(|| {
                                "(no stage breakdown: tracing is off)\n".to_string()
                            });
                        eprintln!(
                            "gmc-serve: shard {index}: slow request id {}: {:.3} ms \
                             end-to-end\n{}",
                            job.id,
                            elapsed.as_secs_f64() * 1e3,
                            breakdown.trim_end()
                        );
                    }
                }
                match outcome {
                    Ok((cache_hit, result)) => {
                        let alive = session.as_ref().expect("session was live");
                        let mut cache = carried;
                        cache.absorb(&alive.cache_stats());
                        let mut frags = carried_frags;
                        frags.absorb(&alive.fragment_cache_stats());
                        ctx.shared.publish_counters(&cache, &frags);
                        let _ = ctx.results.send(Response {
                            seq: Some(job.seq),
                            response: crate::CompileResponse {
                                id: job.id,
                                shard: Some(index),
                                cache_hit,
                                result,
                            },
                        });
                    }
                    Err(payload) => {
                        let msg = panic_message(payload.as_ref());
                        stats.panics += 1;
                        ctx.shared.panics.fetch_add(1, Ordering::Relaxed);
                        // Salvage the counters, drop the session: its
                        // internal invariants can no longer be trusted.
                        let poisoned = session.take().expect("session was live");
                        carried.absorb(&poisoned.cache_stats());
                        carried_frags.absorb(&poisoned.fragment_cache_stats());
                        ctx.shared.publish_counters(&carried, &carried_frags);
                        let now = Instant::now();
                        failures.retain(|t| now.duration_since(*t) <= ctx.policy.window);
                        failures.push(now);
                        let tripped = failures.len() as u32 >= ctx.policy.max_failures;
                        if tripped {
                            ctx.shared.set_state(ShardState::Down);
                        } else {
                            ctx.shared.set_state(ShardState::Restarting);
                        }
                        let _ = ctx.results.send(Response {
                            seq: Some(job.seq),
                            response: crate::CompileResponse::failure_on(
                                job.id,
                                Some(index),
                                FailureKind::ShardPanic,
                                format!("shard {index} panicked serving this request: {msg}"),
                            ),
                        });
                        if tripped {
                            eprintln!(
                                "gmc-serve: shard {index}: circuit breaker open after {} \
                                 failure(s) in {:?}; shard down, routing falls over",
                                failures.len(),
                                ctx.policy.window
                            );
                        } else {
                            let exp = (failures.len() - 1).min(16) as u32;
                            let backoff = ctx
                                .policy
                                .backoff
                                .saturating_mul(1 << exp)
                                .min(ctx.policy.backoff_cap);
                            eprintln!(
                                "gmc-serve: shard {index}: caught panic ({msg}); \
                                 restarting in {backoff:?}"
                            );
                            std::thread::sleep(backoff);
                            let (fresh, restored) = ctx.build_session();
                            let mut cache = carried;
                            cache.absorb(&fresh.cache_stats());
                            let mut frags = carried_frags;
                            frags.absorb(&fresh.fragment_cache_stats());
                            ctx.shared.publish_counters(&cache, &frags);
                            session = Some(fresh);
                            stats.restarts += 1;
                            ctx.shared.restarts.fetch_add(1, Ordering::Relaxed);
                            ctx.shared.set_state(ShardState::Up);
                            eprintln!(
                                "gmc-serve: shard {index}: restarted \
                                 ({restored} chain(s) rewarmed from snapshot)"
                            );
                        }
                    }
                }
            }
            Job::Snapshot(reply) => {
                // A down shard has nothing to contribute; dropping the
                // reply sender tells the collector to skip it.
                if let Some(live) = session.as_ref() {
                    let _ = reply.send(live.snapshot());
                }
            }
            Job::Stats(reply) => {
                let mut cache = carried;
                let mut frags = carried_frags;
                if let Some(live) = session.as_ref() {
                    cache.absorb(&live.cache_stats());
                    frags.absorb(&live.fragment_cache_stats());
                }
                let _ = reply.send(ShardStatus {
                    shard: index,
                    requests: stats.requests,
                    cache,
                    frags,
                });
            }
        }
    }
    stats.cache = carried;
    stats.frags = carried_frags;
    if let Some(live) = session.as_ref() {
        stats.cache.absorb(&live.cache_stats());
        stats.frags.absorb(&live.fragment_cache_stats());
    }
    stats
}

/// Compile one job on the live session and emit its artifacts. Runs
/// inside the `catch_unwind` envelope.
fn serve_compile(
    session: &mut CompileSession,
    buf: &mut String,
    job: &crate::service::CompileJob,
) -> (bool, Result<Artifacts, Failure>) {
    let hits_before = session.cache_stats().hits;
    let result = match session.compile(&job.shape) {
        Ok(chain) => {
            let mut files = Vec::new();
            let span = session.recorder().start();
            if matches!(job.emit, Emit::Cpp | Emit::Both) {
                buf.clear();
                emit_cpp_into(buf, &chain, &job.name);
                files.push((format!("{}.cpp", job.name), buf.clone()));
            }
            if matches!(job.emit, Emit::Rust | Emit::Both) {
                buf.clear();
                emit_rust_into(buf, &chain, &job.name);
                files.push((format!("{}.rs", job.name), buf.clone()));
            }
            session.recorder_mut().stop(Stage::Emit, span);
            Ok(Artifacts {
                files,
                report: chain.describe(),
            })
        }
        Err(e) => Err(Failure {
            kind: FailureKind::Compile,
            message: format!("compile error: {e}"),
        }),
    };
    (session.cache_stats().hits > hits_before, result)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
