//! `gmc-serve`: a supervised, sharded compile service on top of
//! [`gmc_core::CompileSession`].
//!
//! The one-shot `gmcc` pipeline dies cold after every invocation; this
//! crate is the serving layer that keeps it warm — and keeps it *up*.
//! It is the PlanB shape — a compact persisted structure plus a bounded
//! in-memory cache turns a per-request computation into a lookup — with
//! the failure/tail behavior of the data plane treated as a first-class
//! design axis:
//!
//! * **Shard pool.** [`CompileService::start`] spawns `shards` worker
//!   threads, each owning one `CompileSession` (sessions are
//!   single-threaded by design — one per worker, never shared).
//! * **Two-choices routing with fallover.** [`CompileService::submit`]
//!   parses the request in the submitting thread and routes it by
//!   power-of-two-choices over live queue depths
//!   ([`pick_two_choices`]): [`route`] — a stable hash of the chain
//!   *shape* — names the cache-warm home shard, [`route_alt`] (a
//!   salted rehash, always distinct from home) names the alternative,
//!   and the request leaves home only when home's queue is more than
//!   [`ROUTE_AWAY_MARGIN`] entries deeper — sticky enough to keep the
//!   warm cache earning its keep, responsive enough to spill a backed-
//!   up shard's overflow. Ties break deterministically toward home;
//!   down shards are skipped (falling over to the least-loaded live
//!   shard when both candidates are down); [`RoutingMode::HashMod`]
//!   pins the old pure hash%N policy for A/B comparison (`gmcc
//!   --routing hash`). Routing is a performance hint only: every shard
//!   can compile every shape, and compilation is deterministic, so
//!   artifacts are identical wherever a request lands — which is what
//!   makes both route-away and fallover safe.
//! * **Supervision.** Each worker wraps every compile in
//!   `catch_unwind`: a panic costs its request (answered with a typed
//!   `shard_panic` failure) but not the shard — the supervisor discards
//!   the poisoned session, sleeps a capped exponential backoff, and
//!   rebuilds a fresh session rewarmed from the latest snapshot, so the
//!   first repeat request after a restart is a cache hit. A circuit
//!   breaker (K failures in a window) takes a repeatedly-dying shard
//!   out of rotation instead of restart-looping; routing then falls
//!   over to its neighbors. See [`supervisor`] for the state machine.
//! * **Admission control and deadlines.** Per-shard queues are bounded
//!   ([`ServeConfig::queue_cap`]); submissions past the bound are shed
//!   with an in-band `overloaded` failure. Requests carry deadlines
//!   ([`CompileRequest::deadline`], defaulted by
//!   [`ServeConfig::default_deadline`]) enforced twice: at shard
//!   dequeue (stale work is answered without compiling) and in the
//!   submitter's receive path (a wedged shard cannot stall the stream).
//!   Every submitted request receives **exactly one** response: an
//!   internal sequence number deduplicates late shard responses against
//!   submitter-side write-offs.
//! * **Connection backpressure.** The socket transport extends the same
//!   discipline from the shard queues to the connection layer, so one
//!   abusive connection cannot grow daemon memory or starve its
//!   neighbors. A per-connection in-flight admission cap
//!   ([`TransportOptions::conn_in_flight_cap`]) sheds over-cap requests
//!   in band with retryable `overloaded` — cap → shed → client
//!   retry/backoff is the intended control loop, not an error path.
//!   Outbound writers are bounded ([`TransportOptions::writer_queue`]):
//!   a connection that stops reading spills to a dispatcher-side
//!   overflow, and once that overflow outgrows one queue's worth — or
//!   the queue stays full past [`TransportOptions::writer_grace`] — the
//!   connection is slow-closed and its in-flight work is *written off*
//!   through the same exactly-once sequence numbers (late shard replies
//!   dropped and counted, never delivered to a dead socket). Lifecycle
//!   limits bound the population: [`TransportOptions::max_conns`]
//!   refuses extra connections with a typed in-band line before
//!   closing, and [`TransportOptions::idle_timeout`] reaps silent
//!   connections (in-flight or undelivered work exempts). Every
//!   shed/refusal/slow-close/reap/write-off increments a
//!   [`TransportSnapshot`] counter exposed in band and in the
//!   Prometheus dump.
//! * **Warm-restart persistence.** [`CompileService::snapshot`] merges
//!   the per-shard caches into one [`gmc_core::SessionSnapshot`] —
//!   shape descriptors plus selected parenthesizations, *not* emitted
//!   code (see `gmc_core::persist` for the `gmc-session-snapshot v1`
//!   format). Saves are atomic (temp file + rename) and **rotated**:
//!   [`ServeConfig::snapshot_keep`] keeps the last K generations
//!   (`snap`, `snap.1`, …, shifted by a rename chain on every save),
//!   and startup restores the newest *decodable* generation — a
//!   corrupt generation is quarantined to `<path>.bad` and the next
//!   older one warms the service, so a torn final write costs one
//!   save's worth of history, not all of it. On start, each shard restores
//!   exactly the shapes that route to it under the *current* shard
//!   count, so snapshots survive resharding. Restored chains are
//!   bit-identical to freshly compiled ones (pinned by tests below).
//! * **Cross-shape fragment store.** Each shard's session owns a
//!   [`gmc_core::FragmentCache`] (sized by
//!   [`ServeConfig::frag_cache_capacity`]) that shares lowered
//!   enumeration fragments *across shapes* within that shard. Stores
//!   are deliberately per-shard, not global — sessions stay
//!   single-threaded and lock-free on the compile path — and the
//!   snapshot is where sharing happens: [`CompileService::snapshot`]
//!   merges every shard's hot fragments into one deduplicated section,
//!   and each restarted/restored shard warms from that *union*, so a
//!   fragment lowered on shard 0 serves shard 1's first request after
//!   any restart. Fragment counters (hits/misses/evictions/restored)
//!   ride the same `{"op":"stats"}` response as the chain-cache
//!   counters, and `{"op":"health"}` reports both layers' hit rates
//!   from lock-free atomics. `GMC_FRAG=off` disables the store
//!   end-to-end (pools are asserted bit-identical either way).
//! * **Graceful drain.** The intended shutdown sequence — what the
//!   `gmcc --serve` daemon runs on SIGTERM/SIGINT or stdin EOF — is:
//!   stop accepting, [`CompileService::drain`] the queues (answering
//!   everything in flight), [`CompileService::save_snapshot`] the final
//!   atomic snapshot, then [`CompileService::shutdown`]. Warm restarts
//!   are the normal path, not a lucky one.
//! * **Latency histograms and a metrics endpoint.** Every shard keeps
//!   three lock-free log-linear histograms ([`gmc_obs::Histogram`]) in
//!   its shared block: end-to-end response latency (recorded by the
//!   submitter, exactly once per shard-attributed response), queue
//!   wait (submission → dequeue), and compile time. `{"op":"health"}`
//!   reads per-shard `p99_ms`/`queue_wait_p99_ms` straight off the
//!   live buckets; `{"op":"metrics"}` returns the full
//!   [`CompileService::metrics`] snapshot (p50/p90/p99/max per
//!   histogram plus every cache/supervisor counter) in-band, and
//!   [`ServiceMetrics::to_prometheus`] renders the same snapshot as
//!   Prometheus text exposition for `gmcc --metrics-file`. Requests
//!   slower than `gmcc --slow-ms` log their per-stage breakdown
//!   (parse → enumerate → DP → select → expand → emit) to stderr.
//! * **Deterministic fault injection.** The [`fault`] module arms
//!   shard panics, compile delays, torn snapshot writes, and
//!   connection-level faults — dropped, stalled, and garbage-injecting
//!   connections — from a spec string
//!   (`GMC_FAULT=panic:0:3,delay:5,conn_drop:2:4,snapshot_torn`), so
//!   every robustness claim above is exercised by tests (including a
//!   transport chaos property test) rather than asserted.
//!
//! Responses stream back over a channel as shards finish, tagged with
//! the caller's request id (completion order is not submission order).
//! The `gmcc --serve` daemon fronts this API with JSONL over
//! stdin/stdout ([`jsonl`]); the [`transport`] module fronts the same
//! service over unix/TCP sockets (`gmcc --listen`) with one
//! reader/writer thread pair per connection and a single dispatcher
//! that remaps per-connection request ids onto private tokens, so many
//! clients pipeline concurrently and each response returns to its
//! submitting connection (ids are scoped per connection; `gmcc
//! --connect` is the matching client). `bench_serve` records the cold
//! vs. warm vs. restored-from-disk throughput trajectory plus
//! shed/deadline behavior under an overload burst in
//! `BENCH_serve.json`, and `bench_serve --load` drives the socket
//! stack closed-loop: a connections × shards QPS/latency sweep, a
//! skewed workload where two-choices routing must beat hash%N tail
//! latency, and a greedy-contention A/B where a polite client's p99
//! under a co-resident greedy pipeliner must improve with the
//! in-flight cap on vs. off. `bench_serve --load --open-loop` adds
//! fixed-rate open-loop rows whose latency is measured from the
//! *scheduled* send time, so queueing delay under overload is charged
//! to the tail instead of hidden by coordinated omission.

#![warn(missing_docs)]

pub mod fault;
pub mod jsonl;
mod service;
pub mod supervisor;
pub mod transport;

pub use gmc_codegen::emit_runtime_header;
pub use service::{
    pick_two_choices, route, route_alt, Artifacts, CompileRequest, CompileResponse, CompileService,
    Emit, Failure, FailureKind, RoutingMode, ServeConfig, ServeError, ServiceMetrics, ServiceStats,
    ShardMetrics, ShardStatus, DEFAULT_QUEUE_CAP, ROUTE_AWAY_MARGIN,
};
pub use supervisor::{RestartPolicy, ShardHealth, ShardState, ShardStats};
pub use transport::{
    ListenAddr, SocketListener, SocketStream, TransportOptions, TransportReport, TransportSnapshot,
};

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_core::{CompileOptions, DEFAULT_CHAIN_CACHE_CAPACITY};

    const SRC_A: &str = "
        Matrix A <General, Singular>;
        Matrix L <LowerTri, NonSingular>;
        Matrix B <General, Singular>;
        X := A * L^-1 * B;
    ";
    const SRC_B: &str = "
        Matrix H <General, Singular>;
        Matrix P <Symmetric, SPD>;
        Y := H * P^-1;
    ";
    const SRC_C: &str = "
        Matrix A <General, Singular>;
        Matrix B <General, Singular>;
        Matrix C <General, Singular>;
        Matrix D <General, Singular>;
        Z := A * B * C * D;
    ";

    fn fast_options() -> CompileOptions {
        CompileOptions {
            training_instances: 60,
            ..CompileOptions::default()
        }
    }

    fn config(shards: usize) -> ServeConfig {
        ServeConfig {
            shards,
            options: fast_options(),
            ..ServeConfig::default()
        }
    }

    fn request(id: u64, source: &str) -> CompileRequest {
        CompileRequest {
            id,
            name: None,
            source: source.to_string(),
            emit: Emit::Both,
            deadline: None,
        }
    }

    fn by_id(mut responses: Vec<CompileResponse>) -> Vec<CompileResponse> {
        responses.sort_by_key(|r| r.id);
        responses
    }

    #[test]
    fn sharded_service_compiles_and_caches() {
        let mut service = CompileService::start(config(2)).unwrap();
        for round in 0..2u64 {
            for (i, src) in [SRC_A, SRC_B, SRC_C].iter().enumerate() {
                service.submit(request(round * 3 + i as u64, src));
            }
        }
        let responses = by_id(service.drain());
        assert_eq!(responses.len(), 6);
        for r in &responses {
            let artifacts = r.result.as_ref().expect("compiles succeed");
            assert_eq!(artifacts.files.len(), 2, "cpp + rust");
            assert!(artifacts.report.contains("variant 0"));
            assert_eq!(r.cache_hit, r.id >= 3, "second round hits, id {}", r.id);
        }
        // Identical sources repeat on the same shard and artifacts.
        for i in 0..3 {
            assert_eq!(responses[i].shard, responses[i + 3].shard);
            assert_eq!(
                responses[i].result.as_ref().unwrap(),
                responses[i + 3].result.as_ref().unwrap()
            );
        }
        let stats = service.shutdown();
        assert_eq!(stats.requests(), 6);
        assert_eq!(stats.cache_hits(), 3);
        assert_eq!(stats.panics(), 0);
        assert_eq!(stats.late_drops, 0);
    }

    #[test]
    fn in_band_stats_report_per_shard_cache_counters() {
        let mut service = CompileService::start(config(2)).unwrap();
        // Two distinct shapes plus one repeat: 3 requests, 1 hit.
        for (i, src) in [SRC_A, SRC_B, SRC_A].iter().enumerate() {
            service.submit(request(i as u64, src));
        }
        // The stats query rides the work queues, so it observes all
        // three compiles even before their responses are drained.
        let stats = service.stats();
        assert_eq!(stats.len(), 2, "one status per shard");
        assert_eq!(stats.iter().map(|s| s.requests).sum::<u64>(), 3);
        assert_eq!(stats.iter().map(|s| s.cache.hits).sum::<u64>(), 1);
        assert_eq!(stats.iter().map(|s| s.cache.misses).sum::<u64>(), 2);
        assert_eq!(stats.iter().map(|s| s.cache.evictions).sum::<u64>(), 0);
        // The repeat landed on the shard that compiled SRC_A first: its
        // cache reports a nonzero hit rate (1/2 or 1/3 depending on
        // where SRC_B routed).
        let warm = stats.iter().find(|s| s.cache.hits == 1).unwrap();
        assert!(warm.cache.hit_rate() > 0.0);
        // Fragment-store counters ride the same status report. The two
        // distinct compiles populated the store; whether lookups *hit*
        // depends on shape overlap, but lookups definitely happened.
        if gmc_core::active_frag_mode() == gmc_core::FragMode::On {
            assert!(stats.iter().map(|s| s.frags.inserts).sum::<u64>() > 0);
            assert!(stats.iter().map(|s| s.frags.misses).sum::<u64>() > 0);
        } else {
            assert_eq!(stats.iter().map(|s| s.frags.inserts).sum::<u64>(), 0);
        }
        assert_eq!(service.drain().len(), 3, "responses still stream");
        let _ = service.shutdown();
    }

    #[test]
    fn health_reports_every_shard_up_without_touching_queues() {
        let mut service = CompileService::start(config(3)).unwrap();
        service.submit(request(0, SRC_A));
        let health = service.health();
        assert_eq!(health.len(), 3);
        for h in &health {
            assert_eq!(h.state, ShardState::Up);
            assert_eq!(h.restarts, 0);
            assert_eq!(h.shed, 0);
            assert_eq!(h.deadline_exceeded, 0);
        }
        assert_eq!(health.iter().map(|h| h.queue_depth).sum::<usize>(), 1);
        assert_eq!(service.drain().len(), 1);
        let _ = service.shutdown();
    }

    #[test]
    fn parse_errors_come_back_as_responses() {
        let mut service = CompileService::start(config(1)).unwrap();
        service.submit(request(7, "Matrix A <General, Singular>; X := B;"));
        service.submit(request(8, SRC_B));
        let responses = by_id(service.drain());
        assert_eq!(responses.len(), 2);
        let failure = responses[0].result.as_ref().unwrap_err();
        assert!(failure.message.contains("undefined"));
        assert_eq!(failure.kind, FailureKind::Parse);
        assert!(!failure.kind.retryable());
        assert_eq!(responses[0].shard, None);
        assert!(responses[1].result.is_ok(), "stream continues past errors");
    }

    #[test]
    fn snapshot_restart_restores_warm_and_byte_identical() {
        let dir = std::env::temp_dir().join("gmc_serve_snapshot_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.txt");

        let mut cfg = config(2);
        cfg.snapshot_path = Some(path.clone());
        let mut cold = CompileService::start(cfg.clone()).unwrap();
        for (i, src) in [SRC_A, SRC_B, SRC_C].iter().enumerate() {
            cold.submit(request(i as u64, src));
        }
        let cold_responses = by_id(cold.drain());
        cold.save_snapshot(&path).unwrap();
        let cold_stats = cold.shutdown();
        assert_eq!(cold_stats.cache_hits(), 0);

        // Restart — same shard count: every first request is a cache hit
        // and every artifact is byte-identical to the cold compile.
        let mut warm = CompileService::start(cfg).unwrap();
        for (i, src) in [SRC_A, SRC_B, SRC_C].iter().enumerate() {
            warm.submit(request(i as u64, src));
        }
        let warm_responses = by_id(warm.drain());
        for (c, w) in cold_responses.iter().zip(&warm_responses) {
            assert!(w.cache_hit, "restored chain serves id {} warm", w.id);
            assert_eq!(
                c.result.as_ref().unwrap(),
                w.result.as_ref().unwrap(),
                "byte-identical artifacts for id {}",
                w.id
            );
        }
        let warm_stats = warm.shutdown();
        assert_eq!(warm_stats.restored(), 3);
        assert_eq!(warm_stats.cache_hits(), 3);
        // The snapshot also carried the fragment store: the restored
        // daemon rebuilt its chains *through* restored fragments, so its
        // very first service of a previously seen shape was warm at the
        // fragment layer too.
        if gmc_core::active_frag_mode() == gmc_core::FragMode::On {
            assert!(warm_stats.frag_restored() >= 1, "fragments restored");
            assert!(warm_stats.frag_hits() >= 1, "restore-rebuild hit the store");
        }

        // Resharding still works: shapes re-route, nothing is lost.
        let mut resharded_cfg = config(3);
        resharded_cfg.snapshot_path = Some(path.clone());
        let mut resharded = CompileService::start(resharded_cfg).unwrap();
        assert_eq!(resharded.shards(), 3);
        for (i, src) in [SRC_A, SRC_B, SRC_C].iter().enumerate() {
            resharded.submit(request(i as u64, src));
        }
        for r in resharded.drain() {
            assert!(r.cache_hit, "restored across reshard, id {}", r.id);
        }
        let stats = resharded.shutdown();
        assert_eq!(stats.restored(), 3);
    }

    #[test]
    fn snapshot_with_other_options_is_refused() {
        let dir = std::env::temp_dir().join("gmc_serve_mismatch_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.txt");
        let mut cfg = config(1);
        cfg.snapshot_path = Some(path.clone());
        let mut service = CompileService::start(cfg).unwrap();
        service.submit(request(0, SRC_B));
        service.drain();
        service.save_snapshot(&path).unwrap();
        let _ = service.shutdown();

        let mismatched = ServeConfig {
            shards: 1,
            options: CompileOptions {
                training_instances: 61,
                ..CompileOptions::default()
            },
            cache_capacity: DEFAULT_CHAIN_CACHE_CAPACITY,
            snapshot_path: Some(path),
            ..ServeConfig::default()
        };
        assert!(matches!(
            CompileService::start(mismatched),
            Err(ServeError::SnapshotMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_and_service_starts_cold() {
        let dir = std::env::temp_dir().join("gmc_serve_quarantine_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.txt");
        std::fs::write(
            &path,
            "gmc-session-snapshot v1\ngarbage that is not a snapshot",
        )
        .unwrap();

        let mut cfg = config(1);
        cfg.snapshot_path = Some(path.clone());
        let mut service = CompileService::start(cfg).unwrap();
        service.submit(request(0, SRC_B));
        let responses = service.drain();
        assert!(responses[0].result.is_ok());
        assert!(!responses[0].cache_hit, "cold start after quarantine");
        let stats = service.shutdown();
        assert_eq!(stats.restored(), 0);
        assert!(!path.exists(), "corrupt snapshot moved aside");
        let bad = dir.join("snapshot.txt.bad");
        assert!(bad.exists(), "quarantined copy kept for inspection");
    }

    #[test]
    fn snapshot_rotation_warms_from_next_newest_past_a_corrupt_generation() {
        let dir = std::env::temp_dir().join("gmc_serve_rotation_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.txt");

        let mut cfg = config(1);
        cfg.snapshot_path = Some(path.clone());
        cfg.snapshot_keep = 3;
        let mut service = CompileService::start(cfg.clone()).unwrap();
        // Three saves with keep=3: each shifts the generation chain, so
        // the generations hold {A}, {A,B}, {A,B,C} oldest to newest.
        for (i, src) in [SRC_A, SRC_B, SRC_C].iter().enumerate() {
            service.submit(request(i as u64, src));
            assert_eq!(service.drain().len(), 1);
            service.save_snapshot(&path).unwrap();
        }
        let _ = service.shutdown();
        let generation = |g: usize| gmc_core::SessionSnapshot::rotation_path(&path, g);
        assert_eq!(gmc_core::SessionSnapshot::load(&path).unwrap().len(), 3);
        assert_eq!(
            gmc_core::SessionSnapshot::load(generation(1))
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            gmc_core::SessionSnapshot::load(generation(2))
                .unwrap()
                .len(),
            1
        );

        // Corrupt the newest generation; startup must quarantine it to
        // `<path>.bad` and warm from generation 1 instead of starting
        // cold.
        std::fs::write(&path, "gmc-session-snapshot v1\ngarbage").unwrap();
        let mut warm = CompileService::start(cfg).unwrap();
        for (i, src) in [SRC_A, SRC_B, SRC_C].iter().enumerate() {
            warm.submit(request(i as u64, src));
        }
        let responses = by_id(warm.drain());
        assert!(responses[0].cache_hit, "A restored from generation 1");
        assert!(responses[1].cache_hit, "B restored from generation 1");
        assert!(!responses[2].cache_hit, "C only existed in the bad newest");
        assert!(!path.exists(), "corrupt generation moved aside");
        assert!(dir.join("snapshot.txt.bad").exists(), "quarantined copy");
        assert!(generation(1).exists(), "fallback generation untouched");

        // Saving again rotates {A,B} one slot older and never grows the
        // chain past `keep` generations.
        warm.save_snapshot(&path).unwrap();
        let stats = warm.shutdown();
        assert_eq!(stats.restored(), 2);
        assert_eq!(gmc_core::SessionSnapshot::load(&path).unwrap().len(), 3);
        assert_eq!(
            gmc_core::SessionSnapshot::load(generation(2))
                .unwrap()
                .len(),
            2,
            "previous fallback shifted one slot older"
        );
        assert!(!generation(3).exists(), "keep=3 bounds the chain");
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let program = gmc_ir::grammar::parse_program(SRC_A).unwrap();
        for shards in 1..=5 {
            let r = route(program.shape(), shards);
            assert!(r < shards);
            assert_eq!(r, route(program.shape(), shards), "stable");
        }
    }

    #[test]
    fn alternate_route_is_stable_distinct_and_in_range() {
        for src in [SRC_A, SRC_B, SRC_C] {
            let program = gmc_ir::grammar::parse_program(src).unwrap();
            let shape = program.shape();
            assert_eq!(route_alt(shape, 1), 0, "single shard has no alternate");
            for shards in 2..=5 {
                let alt = route_alt(shape, shards);
                assert!(alt < shards);
                assert_eq!(alt, route_alt(shape, shards), "stable");
                assert_ne!(alt, route(shape, shards), "candidates are distinct");
            }
        }
    }

    #[test]
    fn two_choices_picker_is_sticky_with_a_deterministic_tie_break() {
        let live = [true, true, true];
        // Equal depths: the cache-warm home shard wins (the tie-break).
        assert_eq!(pick_two_choices(0, 2, &[5, 0, 5], &live), Some(0));
        // Comparable depths (difference exactly the margin): still home.
        let depths = [ROUTE_AWAY_MARGIN, 0, 0];
        assert_eq!(pick_two_choices(0, 2, &depths, &live), Some(0));
        // One past the margin: route away to the alternate.
        let depths = [ROUTE_AWAY_MARGIN + 1, 0, 0];
        assert_eq!(pick_two_choices(0, 2, &depths, &live), Some(2));
        // The alternate being deeper never routes away from home.
        assert_eq!(pick_two_choices(1, 2, &[0, 3, 100], &live), Some(1));
    }

    #[test]
    fn two_choices_picker_avoids_down_shards() {
        // Home down: the alternate takes the traffic (hash-spread, not a
        // fixed successor).
        assert_eq!(
            pick_two_choices(0, 2, &[0, 0, 50], &[false, true, true]),
            Some(2)
        );
        // Alternate down: home keeps it even when deep.
        assert_eq!(
            pick_two_choices(0, 2, &[50, 0, 0], &[true, true, false]),
            Some(0)
        );
    }

    #[test]
    fn two_choices_picker_falls_over_to_all_live_shards() {
        // All but one shard down: every (home, alt) pair lands on the
        // lone live shard, wherever it is.
        for survivor in 0..4 {
            let mut live = [false; 4];
            live[survivor] = true;
            for home in 0..4 {
                for alt in 0..4 {
                    assert_eq!(
                        pick_two_choices(home, alt, &[3, 1, 4, 1], &live),
                        Some(survivor),
                        "home {home} alt {alt} survivor {survivor}"
                    );
                }
            }
        }
        // Both candidates down, several survivors: least-loaded wins,
        // equal depths break deterministically walking from home.
        let live = [false, true, false, true];
        assert_eq!(pick_two_choices(0, 2, &[0, 9, 0, 4], &live), Some(3));
        assert_eq!(pick_two_choices(0, 2, &[0, 6, 0, 6], &live), Some(1));
        assert_eq!(pick_two_choices(2, 0, &[0, 6, 0, 6], &live), Some(3));
        // Everything down: no shard to pick.
        assert_eq!(pick_two_choices(0, 1, &[0, 0], &[false, false]), None);
    }
}
