//! `gmc-serve`: a sharded compile service on top of
//! [`gmc_core::CompileSession`].
//!
//! The one-shot `gmcc` pipeline dies cold after every invocation; this
//! crate is the serving layer that keeps it warm. It is the PlanB shape
//! — a compact persisted structure plus a bounded in-memory cache turns
//! a per-request computation into a lookup:
//!
//! * **Shard pool.** [`CompileService::start`] spawns `shards` worker
//!   threads, each owning one `CompileSession` (sessions are
//!   single-threaded by design — one per worker, never shared).
//! * **Shape-hash routing.** [`CompileService::submit`] parses the
//!   request in the submitting thread and routes it by [`route`] — a
//!   stable hash of the chain *shape* modulo the shard count — so
//!   repeated shapes always land on the shard whose bounded LRU cache
//!   (and warm DP solver) already holds them. Routing is a performance
//!   hint only: every shard can compile every shape, and compilation is
//!   deterministic, so artifacts are identical wherever a request lands.
//! * **Warm-restart persistence.** [`CompileService::snapshot`] merges
//!   the per-shard caches into one
//!   [`gmc_core::SessionSnapshot`] — shape descriptors plus selected
//!   parenthesizations, *not* emitted code (see `gmc_core::persist` for
//!   the `gmc-session-snapshot v1` format). On start, each shard
//!   restores exactly the shapes that route to it under the *current*
//!   shard count, so snapshots survive resharding. Restored chains are
//!   bit-identical to freshly compiled ones (pinned by tests below):
//!   the first request for a persisted shape is a cache hit, no
//!   enumeration/DP/expansion runs.
//!
//! Responses stream back over a channel as shards finish, tagged with
//! the caller's request id (completion order is not submission order).
//! The `gmcc --serve` daemon fronts this API with JSONL over
//! stdin/stdout ([`jsonl`]); `bench_serve` records the cold vs. warm
//! vs. restored-from-disk throughput trajectory in `BENCH_serve.json`.

#![warn(missing_docs)]

pub mod jsonl;

pub use gmc_codegen::emit_runtime_header;
use gmc_codegen::{emit_cpp_into, emit_rust_into};
use gmc_core::{
    CacheStats, CompileOptions, CompileSession, PersistError, SessionSnapshot,
    DEFAULT_CHAIN_CACHE_CAPACITY,
};
use gmc_ir::grammar::parse_program;
use gmc_ir::Shape;
use std::error::Error;
use std::fmt;
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Which back-end(s) a request wants emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Emit {
    /// C++ translation unit (runtime header served separately).
    #[default]
    Cpp,
    /// Rust module.
    Rust,
    /// Both back-ends.
    Both,
}

impl Emit {
    /// Parse an emit selector (`cpp`, `rust`, or `both`).
    ///
    /// # Errors
    ///
    /// Returns the unknown value.
    pub fn parse(s: &str) -> Result<Emit, String> {
        match s {
            "cpp" => Ok(Emit::Cpp),
            "rust" => Ok(Emit::Rust),
            "both" => Ok(Emit::Both),
            other => Err(format!("unknown emit value `{other}`")),
        }
    }
}

/// One compile request.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    /// Base name for emitted functions/files; defaults to the program's
    /// left-hand-side identifier, lowercased.
    pub name: Option<String>,
    /// The `.gmc` program text.
    pub source: String,
    /// Back-end selection.
    pub emit: Emit,
}

/// The artifacts of one successful compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifacts {
    /// Emitted `(file name, contents)` pairs.
    pub files: Vec<(String, String)>,
    /// Human-readable variant report
    /// ([`gmc_core::CompiledChain::describe`]).
    pub report: String,
}

/// One compile response (streamed; completion order ≠ submission order).
#[derive(Debug)]
pub struct CompileResponse {
    /// The request id.
    pub id: u64,
    /// Which shard served it (`None` if the request failed before
    /// routing, i.e. at parse).
    pub shard: Option<usize>,
    /// `true` if the shard's compiled-chain cache already held the shape
    /// (including chains restored from a snapshot).
    pub cache_hit: bool,
    /// The artifacts, or a rendered error.
    pub result: Result<Artifacts, String>,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker count; each worker owns one session. `0` is treated as 1.
    pub shards: usize,
    /// Compile options for every shard (must match a restored snapshot's
    /// fingerprint).
    pub options: CompileOptions,
    /// Per-shard compiled-chain cache capacity.
    pub cache_capacity: usize,
    /// Snapshot file for warm restarts: loaded on start when it exists
    /// (missing file = cold start, not an error); written by
    /// [`CompileService::save_snapshot`].
    pub snapshot_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            options: CompileOptions::default(),
            cache_capacity: DEFAULT_CHAIN_CACHE_CAPACITY,
            snapshot_path: None,
        }
    }
}

/// Per-shard observability counters, collected at shutdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Requests this shard served.
    pub requests: u64,
    /// Compiled-chain cache hits.
    pub cache_hits: u64,
    /// Cache misses (full selection pipeline ran).
    pub cache_misses: u64,
    /// LRU evictions.
    pub evictions: u64,
    /// Chains restored from the snapshot at startup.
    pub restored: usize,
}

/// Whole-service counters returned by [`CompileService::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
}

impl ServiceStats {
    /// Total requests across shards.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Total cache hits across shards.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.cache_hits).sum()
    }

    /// Total chains restored from the startup snapshot.
    #[must_use]
    pub fn restored(&self) -> usize {
        self.shards.iter().map(|s| s.restored).sum()
    }
}

/// Errors from starting or persisting the service.
#[derive(Debug)]
pub enum ServeError {
    /// Loading or saving the snapshot failed.
    Persist(PersistError),
    /// The snapshot was taken under different compile options.
    SnapshotMismatch {
        /// The snapshot's options fingerprint.
        found: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Persist(e) => write!(f, "snapshot error: {e}"),
            ServeError::SnapshotMismatch { found } => write!(
                f,
                "snapshot options fingerprint `{found}` does not match the service options \
                 (recompile cold or delete the snapshot)"
            ),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Persist(e) => Some(e),
            ServeError::SnapshotMismatch { .. } => None,
        }
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        ServeError::Persist(e)
    }
}

/// Stable shard routing: hash of the chain shape modulo the shard count.
///
/// Uses `DefaultHasher::new()` (fixed keys, process-independent), so a
/// restarted service with the same shard count routes every shape to the
/// shard that restored it. Correctness never depends on this stability:
/// the startup restore filters with the *same* function in the same
/// process, and any shard compiles any shape identically.
#[must_use]
pub fn route(shape: &Shape, shards: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    shape.hash(&mut h);
    (h.finish() % shards.max(1) as u64) as usize
}

/// Live observability counters of one shard, collected in-band by
/// [`CompileService::stats`] (unlike [`ShardStats`], which is only
/// available at shutdown).
#[derive(Debug, Clone, Copy)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Requests served so far.
    pub requests: u64,
    /// The shard session's cumulative compiled-chain cache counters.
    pub cache: CacheStats,
    /// Chains restored from the startup snapshot.
    pub restored: usize,
}

/// Work items a shard receives.
enum Job {
    Compile(Box<CompileJob>),
    Snapshot(Sender<SessionSnapshot>),
    Stats(Sender<ShardStatus>),
}

struct CompileJob {
    id: u64,
    name: String,
    shape: Shape,
    emit: Emit,
}

/// A running sharded compile service (see the [module docs](self)).
pub struct CompileService {
    job_txs: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<ShardStats>>,
    results_tx: Sender<CompileResponse>,
    results_rx: Receiver<CompileResponse>,
    pending: usize,
    /// Outstanding responses per shard, so a crashed worker (a shard
    /// thread only exits early by panicking) can be written off instead
    /// of blocking [`CompileService::recv`] forever.
    pending_by_shard: Vec<usize>,
}

impl CompileService {
    /// Spawn the shard pool, restoring the snapshot in
    /// `config.snapshot_path` (when present) into the shards its shapes
    /// route to.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] if the snapshot exists but is unreadable,
    /// malformed, or was taken under different compile options.
    pub fn start(config: ServeConfig) -> Result<CompileService, ServeError> {
        let shards = config.shards.max(1);
        let snapshot = match &config.snapshot_path {
            Some(path) if path.exists() => {
                let snap = SessionSnapshot::load(path)?;
                if !snap.compatible_with(&config.options) {
                    return Err(ServeError::SnapshotMismatch {
                        found: snap.options_fingerprint().to_string(),
                    });
                }
                Some(Arc::new(snap))
            }
            _ => None,
        };
        let (results_tx, results_rx) = channel();
        let mut job_txs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for index in 0..shards {
            let (tx, rx) = channel();
            let results = results_tx.clone();
            let options = config.options.clone();
            let capacity = config.cache_capacity;
            let snap = snapshot.clone();
            handles.push(std::thread::spawn(move || {
                shard_main(index, shards, rx, &results, options, capacity, snap)
            }));
            job_txs.push(tx);
        }
        Ok(CompileService {
            job_txs,
            handles,
            results_tx,
            results_rx,
            pending: 0,
            pending_by_shard: vec![0; shards],
        })
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.job_txs.len()
    }

    /// Outstanding responses (submitted minus received).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Parse, route, and enqueue a request. Parse failures produce an
    /// error *response* (with `shard: None`) rather than an error here,
    /// so one bad request never stalls a stream.
    pub fn submit(&mut self, request: CompileRequest) {
        self.pending += 1;
        let program = match parse_program(&request.source) {
            Ok(p) => p,
            Err(e) => {
                let _ = self.results_tx.send(CompileResponse {
                    id: request.id,
                    shard: None,
                    cache_hit: false,
                    result: Err(format!("parse error: {e}")),
                });
                return;
            }
        };
        let name = request.name.unwrap_or_else(|| program.lhs().to_lowercase());
        let shape = program.shape().clone();
        let shard = route(&shape, self.shards());
        let id = request.id;
        let job = Job::Compile(Box::new(CompileJob {
            id,
            name,
            shape,
            emit: request.emit,
        }));
        // A send only fails if the worker panicked; answer in-band so
        // the caller's pending count still balances.
        if self.job_txs[shard].send(job).is_ok() {
            self.pending_by_shard[shard] += 1;
        } else {
            let _ = self.results_tx.send(CompileResponse {
                id,
                shard: None,
                cache_hit: false,
                result: Err(format!("shard {shard} worker terminated unexpectedly")),
            });
        }
    }

    fn note_received(&mut self, response: &CompileResponse) {
        self.pending -= 1;
        if let Some(shard) = response.shard {
            self.pending_by_shard[shard] = self.pending_by_shard[shard].saturating_sub(1);
        }
    }

    /// Write off the outstanding requests of any shard whose thread has
    /// exited while the service still holds its job sender — which only
    /// happens if the worker panicked. Their responses will never
    /// arrive; waiting for them would hang [`CompileService::recv`].
    fn reap_dead_shards(&mut self) {
        for (shard, handle) in self.handles.iter().enumerate() {
            if self.pending_by_shard[shard] > 0 && handle.is_finished() {
                self.pending -= self.pending_by_shard[shard];
                self.pending_by_shard[shard] = 0;
            }
        }
    }

    /// Block for the next response; `None` once nothing is outstanding
    /// (including requests written off because their shard crashed).
    pub fn recv(&mut self) -> Option<CompileResponse> {
        loop {
            if self.pending == 0 {
                return None;
            }
            match self
                .results_rx
                .recv_timeout(std::time::Duration::from_millis(50))
            {
                Ok(r) => {
                    self.note_received(&r);
                    return Some(r);
                }
                // The channel was idle for a beat: check for crashed
                // shards before waiting again (buffered responses are
                // always drained first, so a dead shard's surviving
                // output is never thrown away).
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => self.reap_dead_shards(),
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    /// The next response only if one is already available.
    pub fn try_recv(&mut self) -> Option<CompileResponse> {
        if self.pending == 0 {
            return None;
        }
        match self.results_rx.try_recv() {
            Ok(r) => {
                self.note_received(&r);
                Some(r)
            }
            Err(_) => None,
        }
    }

    /// Receive every outstanding response (blocking).
    pub fn drain(&mut self) -> Vec<CompileResponse> {
        let mut out = Vec::with_capacity(self.pending);
        while let Some(r) = self.recv() {
            out.push(r);
        }
        out
    }

    /// Merge every shard's compiled-chain cache into one snapshot.
    /// Waits for shards to reach the snapshot job, so submit-then-
    /// snapshot sees all prior compiles of each shard's queue.
    #[must_use]
    pub fn snapshot(&self) -> SessionSnapshot {
        let mut merged: Option<SessionSnapshot> = None;
        for tx in &self.job_txs {
            let (reply_tx, reply_rx) = channel();
            let _ = tx.send(Job::Snapshot(reply_tx));
            if let Ok(snap) = reply_rx.recv() {
                merged = Some(match merged.take() {
                    None => snap,
                    Some(mut m) => {
                        // Shards share one options fingerprint by
                        // construction, so merge cannot fail.
                        let _ = m.merge(snap);
                        m
                    }
                });
            }
        }
        merged.expect("service has at least one shard")
    }

    /// Collect every live shard's observability counters (requests,
    /// compiled-chain cache hits/misses/evictions, restored chains), in
    /// shard order. Like [`CompileService::snapshot`], the query rides
    /// the shard work queues, so it observes every compile submitted
    /// before it; shards that have crashed are skipped. This is what the
    /// daemon's in-band `{"op":"stats"}` request serves.
    #[must_use]
    pub fn stats(&self) -> Vec<ShardStatus> {
        let mut out = Vec::with_capacity(self.job_txs.len());
        for tx in &self.job_txs {
            let (reply_tx, reply_rx) = channel();
            let _ = tx.send(Job::Stats(reply_tx));
            if let Ok(status) = reply_rx.recv() {
                out.push(status);
            }
        }
        out
    }

    /// [`CompileService::snapshot`] straight to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<(), ServeError> {
        Ok(self.snapshot().save(path)?)
    }

    /// Stop accepting work, join every shard, and return the collected
    /// per-shard counters.
    #[must_use]
    pub fn shutdown(self) -> ServiceStats {
        let CompileService {
            job_txs, handles, ..
        } = self;
        drop(job_txs);
        let shards = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect();
        ServiceStats { shards }
    }
}

fn shard_main(
    index: usize,
    shards: usize,
    jobs: Receiver<Job>,
    results: &Sender<CompileResponse>,
    options: CompileOptions,
    cache_capacity: usize,
    snapshot: Option<Arc<SessionSnapshot>>,
) -> ShardStats {
    let mut session = CompileSession::with_options(options);
    session.set_chain_cache_capacity(cache_capacity);
    let mut stats = ShardStats::default();
    if let Some(snap) = snapshot {
        // Compatibility was validated in `start`. A rebuild failure
        // (corrupted decisions) degrades to a genuinely cold shard —
        // restore inserts nothing on error — and is worth a diagnostic,
        // since the operator should delete the snapshot.
        match session.restore_filtered(&snap, |shape| route(shape, shards) == index) {
            Ok(n) => stats.restored = n,
            Err(e) => eprintln!("gmc-serve: shard {index}: snapshot restore failed: {e}"),
        }
    }
    let mut buf = String::new();
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Compile(job) => {
                stats.requests += 1;
                let hits_before = session.cache_stats().hits;
                let result = match session.compile(&job.shape) {
                    Ok(chain) => {
                        let mut files = Vec::new();
                        if matches!(job.emit, Emit::Cpp | Emit::Both) {
                            buf.clear();
                            emit_cpp_into(&mut buf, &chain, &job.name);
                            files.push((format!("{}.cpp", job.name), buf.clone()));
                        }
                        if matches!(job.emit, Emit::Rust | Emit::Both) {
                            buf.clear();
                            emit_rust_into(&mut buf, &chain, &job.name);
                            files.push((format!("{}.rs", job.name), buf.clone()));
                        }
                        Ok(Artifacts {
                            files,
                            report: chain.describe(),
                        })
                    }
                    Err(e) => Err(format!("compile error: {e}")),
                };
                let response = CompileResponse {
                    id: job.id,
                    shard: Some(index),
                    cache_hit: session.cache_stats().hits > hits_before,
                    result,
                };
                let _ = results.send(response);
            }
            Job::Snapshot(reply) => {
                let _ = reply.send(session.snapshot());
            }
            Job::Stats(reply) => {
                let _ = reply.send(ShardStatus {
                    shard: index,
                    requests: stats.requests,
                    cache: session.cache_stats(),
                    restored: stats.restored,
                });
            }
        }
    }
    let cache = session.cache_stats();
    stats.cache_hits = cache.hits;
    stats.cache_misses = cache.misses;
    stats.evictions = cache.evictions;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC_A: &str = "
        Matrix A <General, Singular>;
        Matrix L <LowerTri, NonSingular>;
        Matrix B <General, Singular>;
        X := A * L^-1 * B;
    ";
    const SRC_B: &str = "
        Matrix H <General, Singular>;
        Matrix P <Symmetric, SPD>;
        Y := H * P^-1;
    ";
    const SRC_C: &str = "
        Matrix A <General, Singular>;
        Matrix B <General, Singular>;
        Matrix C <General, Singular>;
        Matrix D <General, Singular>;
        Z := A * B * C * D;
    ";

    fn fast_options() -> CompileOptions {
        CompileOptions {
            training_instances: 60,
            ..CompileOptions::default()
        }
    }

    fn config(shards: usize) -> ServeConfig {
        ServeConfig {
            shards,
            options: fast_options(),
            ..ServeConfig::default()
        }
    }

    fn request(id: u64, source: &str) -> CompileRequest {
        CompileRequest {
            id,
            name: None,
            source: source.to_string(),
            emit: Emit::Both,
        }
    }

    fn by_id(mut responses: Vec<CompileResponse>) -> Vec<CompileResponse> {
        responses.sort_by_key(|r| r.id);
        responses
    }

    #[test]
    fn sharded_service_compiles_and_caches() {
        let mut service = CompileService::start(config(2)).unwrap();
        for round in 0..2u64 {
            for (i, src) in [SRC_A, SRC_B, SRC_C].iter().enumerate() {
                service.submit(request(round * 3 + i as u64, src));
            }
        }
        let responses = by_id(service.drain());
        assert_eq!(responses.len(), 6);
        for r in &responses {
            let artifacts = r.result.as_ref().expect("compiles succeed");
            assert_eq!(artifacts.files.len(), 2, "cpp + rust");
            assert!(artifacts.report.contains("variant 0"));
            assert_eq!(r.cache_hit, r.id >= 3, "second round hits, id {}", r.id);
        }
        // Identical sources repeat on the same shard and artifacts.
        for i in 0..3 {
            assert_eq!(responses[i].shard, responses[i + 3].shard);
            assert_eq!(
                responses[i].result.as_ref().unwrap(),
                responses[i + 3].result.as_ref().unwrap()
            );
        }
        let stats = service.shutdown();
        assert_eq!(stats.requests(), 6);
        assert_eq!(stats.cache_hits(), 3);
    }

    #[test]
    fn in_band_stats_report_per_shard_cache_counters() {
        let mut service = CompileService::start(config(2)).unwrap();
        // Two distinct shapes plus one repeat: 3 requests, 1 hit.
        for (i, src) in [SRC_A, SRC_B, SRC_A].iter().enumerate() {
            service.submit(request(i as u64, src));
        }
        // The stats query rides the work queues, so it observes all
        // three compiles even before their responses are drained.
        let stats = service.stats();
        assert_eq!(stats.len(), 2, "one status per shard");
        assert_eq!(stats.iter().map(|s| s.requests).sum::<u64>(), 3);
        assert_eq!(stats.iter().map(|s| s.cache.hits).sum::<u64>(), 1);
        assert_eq!(stats.iter().map(|s| s.cache.misses).sum::<u64>(), 2);
        assert_eq!(stats.iter().map(|s| s.cache.evictions).sum::<u64>(), 0);
        // The repeat landed on the shard that compiled SRC_A first: its
        // cache reports a nonzero hit rate (1/2 or 1/3 depending on
        // where SRC_B routed).
        let warm = stats.iter().find(|s| s.cache.hits == 1).unwrap();
        assert!(warm.cache.hit_rate() > 0.0);
        assert_eq!(service.drain().len(), 3, "responses still stream");
        let _ = service.shutdown();
    }

    #[test]
    fn parse_errors_come_back_as_responses() {
        let mut service = CompileService::start(config(1)).unwrap();
        service.submit(request(7, "Matrix A <General, Singular>; X := B;"));
        service.submit(request(8, SRC_B));
        let responses = by_id(service.drain());
        assert_eq!(responses.len(), 2);
        assert!(responses[0]
            .result
            .as_ref()
            .unwrap_err()
            .contains("undefined"));
        assert_eq!(responses[0].shard, None);
        assert!(responses[1].result.is_ok(), "stream continues past errors");
    }

    #[test]
    fn snapshot_restart_restores_warm_and_byte_identical() {
        let dir = std::env::temp_dir().join("gmc_serve_snapshot_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.txt");

        let mut cfg = config(2);
        cfg.snapshot_path = Some(path.clone());
        let mut cold = CompileService::start(cfg.clone()).unwrap();
        for (i, src) in [SRC_A, SRC_B, SRC_C].iter().enumerate() {
            cold.submit(request(i as u64, src));
        }
        let cold_responses = by_id(cold.drain());
        cold.save_snapshot(&path).unwrap();
        let cold_stats = cold.shutdown();
        assert_eq!(cold_stats.cache_hits(), 0);

        // Restart — same shard count: every first request is a cache hit
        // and every artifact is byte-identical to the cold compile.
        let mut warm = CompileService::start(cfg).unwrap();
        for (i, src) in [SRC_A, SRC_B, SRC_C].iter().enumerate() {
            warm.submit(request(i as u64, src));
        }
        let warm_responses = by_id(warm.drain());
        for (c, w) in cold_responses.iter().zip(&warm_responses) {
            assert!(w.cache_hit, "restored chain serves id {} warm", w.id);
            assert_eq!(
                c.result.as_ref().unwrap(),
                w.result.as_ref().unwrap(),
                "byte-identical artifacts for id {}",
                w.id
            );
        }
        let warm_stats = warm.shutdown();
        assert_eq!(warm_stats.restored(), 3);
        assert_eq!(warm_stats.cache_hits(), 3);

        // Resharding still works: shapes re-route, nothing is lost.
        let mut resharded_cfg = config(3);
        resharded_cfg.snapshot_path = Some(path.clone());
        let mut resharded = CompileService::start(resharded_cfg).unwrap();
        assert_eq!(resharded.shards(), 3);
        for (i, src) in [SRC_A, SRC_B, SRC_C].iter().enumerate() {
            resharded.submit(request(i as u64, src));
        }
        for r in resharded.drain() {
            assert!(r.cache_hit, "restored across reshard, id {}", r.id);
        }
        let stats = resharded.shutdown();
        assert_eq!(stats.restored(), 3);
    }

    #[test]
    fn snapshot_with_other_options_is_refused() {
        let dir = std::env::temp_dir().join("gmc_serve_mismatch_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.txt");
        let mut cfg = config(1);
        cfg.snapshot_path = Some(path.clone());
        let mut service = CompileService::start(cfg).unwrap();
        service.submit(request(0, SRC_B));
        service.drain();
        service.save_snapshot(&path).unwrap();
        let _ = service.shutdown();

        let mismatched = ServeConfig {
            shards: 1,
            options: CompileOptions {
                training_instances: 61,
                ..CompileOptions::default()
            },
            cache_capacity: DEFAULT_CHAIN_CACHE_CAPACITY,
            snapshot_path: Some(path),
        };
        assert!(matches!(
            CompileService::start(mismatched),
            Err(ServeError::SnapshotMismatch { .. })
        ));
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let program = parse_program(SRC_A).unwrap();
        for shards in 1..=5 {
            let r = route(program.shape(), shards);
            assert!(r < shards);
            assert_eq!(r, route(program.shape(), shards), "stable");
        }
    }
}
