//! The sharded [`CompileService`]: request/response types, admission
//! control, deadlines, fallover routing, and exactly-once response
//! bookkeeping. The per-shard worker loop lives in
//! [`supervisor`](crate::supervisor); deterministic fault triggers in
//! [`fault`](crate::fault).

use crate::fault::FaultPlan;
use crate::supervisor::{
    shard_main, RestartPolicy, ShardCtx, ShardHealth, ShardShared, ShardState, ShardStats,
};
use gmc_core::{
    CacheStats, CompileOptions, CompileSession, FragCacheStats, PersistError, SessionSnapshot,
    DEFAULT_CHAIN_CACHE_CAPACITY, DEFAULT_FRAG_CACHE_CAPACITY,
};
use gmc_ir::grammar::parse_program;
use gmc_ir::Shape;
use gmc_obs::{write_prom_counter, Snapshot};
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default bound on each shard's queue (queued + in-flight requests);
/// submissions beyond it are shed with an in-band `overloaded` error.
pub const DEFAULT_QUEUE_CAP: usize = 1024;

/// Stickiness margin of the two-choices picker: the cache-warm home
/// shard keeps a request unless its queue is deeper than the alternate
/// candidate's by **more than** this many entries. Small enough that a
/// hot shape class spills before its home queue melts down, large
/// enough that ordinary burst jitter (a handful of in-flight requests)
/// never sacrifices chain/fragment locality.
pub const ROUTE_AWAY_MARGIN: usize = 8;

/// Which back-end(s) a request wants emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Emit {
    /// C++ translation unit (runtime header served separately).
    #[default]
    Cpp,
    /// Rust module.
    Rust,
    /// Both back-ends.
    Both,
}

impl Emit {
    /// Parse an emit selector (`cpp`, `rust`, or `both`).
    ///
    /// # Errors
    ///
    /// Returns the unknown value.
    pub fn parse(s: &str) -> Result<Emit, String> {
        match s {
            "cpp" => Ok(Emit::Cpp),
            "rust" => Ok(Emit::Rust),
            "both" => Ok(Emit::Both),
            other => Err(format!("unknown emit value `{other}`")),
        }
    }
}

/// One compile request.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    /// Base name for emitted functions/files; defaults to the program's
    /// left-hand-side identifier, lowercased.
    pub name: Option<String>,
    /// The `.gmc` program text.
    pub source: String,
    /// Back-end selection.
    pub emit: Emit,
    /// Time budget measured from submission; `None` uses the service's
    /// [`ServeConfig::default_deadline`]. Enforced twice: at shard
    /// dequeue (stale requests are answered without compiling) and in
    /// the submitter's receive path (a wedged shard cannot stall the
    /// response stream).
    pub deadline: Option<Duration>,
}

/// The artifacts of one successful compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifacts {
    /// Emitted `(file name, contents)` pairs.
    pub files: Vec<(String, String)>,
    /// Human-readable variant report
    /// ([`gmc_core::CompiledChain::describe`]).
    pub report: String,
}

/// Why a request failed — every failure is typed so callers (and the
/// JSONL wire format's `kind` field) can tell load-shedding from bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The `.gmc` source did not parse.
    Parse,
    /// The program parsed but could not be compiled.
    Compile,
    /// Shed by admission control: the target shard's queue was full.
    /// Retryable — the request was never enqueued.
    Overloaded,
    /// The deadline expired before a shard produced the artifacts.
    DeadlineExceeded,
    /// The serving shard panicked on this request (the supervisor
    /// restarts it; an immediate retry usually lands on a warm shard).
    ShardPanic,
    /// Every candidate shard is down (circuit breaker open) or the
    /// worker thread is gone.
    ShardDown,
    /// The request itself was malformed (bad JSONL, oversized line,
    /// unknown op, ...). Produced by the daemon, not this crate.
    BadRequest,
}

impl FailureKind {
    /// Wire name, stable for scripts (`parse`, `compile`, `overloaded`,
    /// `deadline_exceeded`, `shard_panic`, `shard_down`, `bad_request`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Parse => "parse",
            FailureKind::Compile => "compile",
            FailureKind::Overloaded => "overloaded",
            FailureKind::DeadlineExceeded => "deadline_exceeded",
            FailureKind::ShardPanic => "shard_panic",
            FailureKind::ShardDown => "shard_down",
            FailureKind::BadRequest => "bad_request",
        }
    }

    /// `true` for failures where an immediate retry can succeed
    /// (shedding, deadline, panic, down shard) — as opposed to failures
    /// deterministic in the request itself.
    #[must_use]
    pub fn retryable(self) -> bool {
        !matches!(
            self,
            FailureKind::Parse | FailureKind::Compile | FailureKind::BadRequest
        )
    }
}

/// A typed request failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// The failure class.
    pub kind: FailureKind,
    /// Human-readable detail.
    pub message: String,
}

impl Failure {
    /// Build a failure.
    pub fn new(kind: FailureKind, message: impl Into<String>) -> Failure {
        Failure {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// One compile response (streamed; completion order ≠ submission order).
#[derive(Debug)]
pub struct CompileResponse {
    /// The request id.
    pub id: u64,
    /// Which shard served (or shed/expired) it; `None` if the request
    /// failed before routing, i.e. at parse.
    pub shard: Option<usize>,
    /// `true` if the shard's compiled-chain cache already held the shape
    /// (including chains restored from a snapshot).
    pub cache_hit: bool,
    /// The artifacts, or a typed failure.
    pub result: Result<Artifacts, Failure>,
}

impl CompileResponse {
    /// An unrouted failure response (used by front-ends, e.g. the JSONL
    /// daemon, for requests that never reach the service).
    #[must_use]
    pub fn failure(id: u64, kind: FailureKind, message: impl Into<String>) -> CompileResponse {
        CompileResponse::failure_on(id, None, kind, message)
    }

    pub(crate) fn failure_on(
        id: u64,
        shard: Option<usize>,
        kind: FailureKind,
        message: impl Into<String>,
    ) -> CompileResponse {
        CompileResponse {
            id,
            shard,
            cache_hit: false,
            result: Err(Failure::new(kind, message)),
        }
    }
}

/// Which shard-selection policy the submitter runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// Power-of-two-choices over live queue depths: candidates are the
    /// stable home shard ([`route`]) and a second hash-derived shard
    /// ([`route_alt`]); the home shard wins unless its queue exceeds the
    /// alternate's by more than [`ROUTE_AWAY_MARGIN`]. Down shards
    /// never receive traffic; with both candidates down the picker
    /// falls back to the least-loaded live shard. The default.
    #[default]
    TwoChoices,
    /// Legacy `hash % N` with a fixed forward probe past down shards.
    /// Kept so `bench_serve --load` can measure the two-choices win on
    /// skewed workloads instead of asserting it.
    HashMod,
}

impl RoutingMode {
    /// Parse a routing selector (`two-choices` or `hash-mod`).
    ///
    /// # Errors
    ///
    /// Returns the unknown value.
    pub fn parse(s: &str) -> Result<RoutingMode, String> {
        match s {
            "two-choices" => Ok(RoutingMode::TwoChoices),
            "hash-mod" => Ok(RoutingMode::HashMod),
            other => Err(format!("unknown routing mode `{other}`")),
        }
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker count; each worker owns one session. `0` is treated as 1.
    pub shards: usize,
    /// Compile options for every shard (must match a restored snapshot's
    /// fingerprint).
    pub options: CompileOptions,
    /// Per-shard compiled-chain cache capacity.
    pub cache_capacity: usize,
    /// Per-shard cross-shape fragment-store capacity
    /// ([`CompileSession::set_fragment_cache_capacity`]); `0` disables
    /// the store. Each shard owns its store (sessions are
    /// single-threaded), but snapshot merges carry every shard's hot
    /// fragments, so restarts and restores warm all shards from the
    /// union.
    pub frag_cache_capacity: usize,
    /// Snapshot file for warm restarts: the newest decodable generation
    /// is loaded on start (missing files = cold start; a corrupt
    /// generation is quarantined to `<generation>.bad` and the scan
    /// falls back to the next-newest); written by
    /// [`CompileService::save_snapshot`], rotated per
    /// [`ServeConfig::snapshot_keep`].
    pub snapshot_path: Option<PathBuf>,
    /// Admission control: max queued + in-flight requests per shard
    /// before submissions are shed with `overloaded`.
    pub queue_cap: usize,
    /// Deadline applied to requests that do not carry their own.
    /// `None` = no deadline.
    pub default_deadline: Option<Duration>,
    /// Supervision policy: restart backoff and circuit breaker.
    pub restart: RestartPolicy,
    /// Fault-injection plan (inert by default). Clones share state, so
    /// keeping a clone lets a front-end re-arm faults while the service
    /// runs.
    pub faults: FaultPlan,
    /// Slow-request log: any request whose end-to-end latency reaches
    /// this threshold gets its per-stage breakdown printed to stderr by
    /// the serving shard (`gmcc --slow-ms`). `None` disables the log.
    pub slow_request: Option<Duration>,
    /// Shard-selection policy (default: power-of-two-choices).
    pub routing: RoutingMode,
    /// Snapshot generations [`CompileService::save_snapshot`] keeps on
    /// disk (`<path>`, `<path>.1`, ... `<path>.{K-1}`, rotated by atomic
    /// renames). `0` or `1` keeps only the newest — the pre-rotation
    /// behavior. Startup restores the newest decodable generation.
    pub snapshot_keep: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            options: CompileOptions::default(),
            cache_capacity: DEFAULT_CHAIN_CACHE_CAPACITY,
            frag_cache_capacity: DEFAULT_FRAG_CACHE_CAPACITY,
            snapshot_path: None,
            queue_cap: DEFAULT_QUEUE_CAP,
            default_deadline: None,
            restart: RestartPolicy::default(),
            faults: FaultPlan::new(),
            slow_request: None,
            routing: RoutingMode::default(),
            snapshot_keep: 1,
        }
    }
}

/// Whole-service counters returned by [`CompileService::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
    /// Responses that arrived after their request had been written off
    /// (deadline expiry or shard reap) and were dropped to preserve
    /// exactly-one-response semantics.
    pub late_drops: u64,
}

impl ServiceStats {
    /// Total requests across shards.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// Total cache hits across shards.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.cache.hits).sum()
    }

    /// Total chains restored from snapshots (startup and supervisor
    /// restarts).
    #[must_use]
    pub fn restored(&self) -> u64 {
        self.shards.iter().map(|s| s.cache.restored).sum()
    }

    /// Total fragment-store hits across shards.
    #[must_use]
    pub fn frag_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.frags.hits).sum()
    }

    /// Total fragments restored from snapshots across shards.
    #[must_use]
    pub fn frag_restored(&self) -> u64 {
        self.shards.iter().map(|s| s.frags.restored).sum()
    }

    /// Total panics caught by shard supervisors.
    #[must_use]
    pub fn panics(&self) -> u64 {
        self.shards.iter().map(|s| s.panics).sum()
    }

    /// Total supervisor restarts completed.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.restarts).sum()
    }
}

/// Errors from starting or persisting the service.
#[derive(Debug)]
pub enum ServeError {
    /// Loading or saving the snapshot failed.
    Persist(PersistError),
    /// The snapshot was taken under different compile options.
    SnapshotMismatch {
        /// The snapshot's options fingerprint.
        found: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Persist(e) => write!(f, "snapshot error: {e}"),
            ServeError::SnapshotMismatch { found } => write!(
                f,
                "snapshot options fingerprint `{found}` does not match the service options \
                 (recompile cold or delete the snapshot)"
            ),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Persist(e) => Some(e),
            ServeError::SnapshotMismatch { .. } => None,
        }
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        ServeError::Persist(e)
    }
}

/// Stable **home** shard of a shape: hash of the chain shape modulo the
/// shard count.
///
/// Uses `DefaultHasher::new()` (fixed keys, process-independent), so a
/// restarted service with the same shard count routes every shape to the
/// shard that restored it — this is the function the startup restore and
/// supervisor rewarm filter snapshots with, which is why it stays purely
/// shape-determined even though live routing is load-aware. Correctness
/// never depends on this stability: any shard compiles any shape
/// identically. Live submission runs the two-choices picker over this
/// home shard and [`route_alt`] — see [`pick_two_choices`].
#[must_use]
pub fn route(shape: &Shape, shards: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    shape.hash(&mut h);
    (h.finish() % shards.max(1) as u64) as usize
}

/// The shape's **alternate** candidate for two-choices routing: a second
/// independent hash, folded so it never collides with [`route`]'s home
/// shard when more than one shard exists. As stable across restarts as
/// `route` itself.
#[must_use]
pub fn route_alt(shape: &Shape, shards: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let n = shards.max(1);
    if n == 1 {
        return 0;
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    // Salt so the alternate hash is independent of the home hash.
    0x9e37_79b9_7f4a_7c15_u64.hash(&mut h);
    shape.hash(&mut h);
    let step = 1 + (h.finish() % (n as u64 - 1)) as usize;
    (route(shape, n) + step) % n
}

/// The power-of-two-choices picker, pure so tests can pin it: choose
/// between the cache-warm `home` shard and the `alt`ernate candidate by
/// live queue depth.
///
/// Policy, in order:
/// - both candidates live: `home` wins unless `depths[home]` exceeds
///   `depths[alt]` by **more than** [`ROUTE_AWAY_MARGIN`] (ties and
///   comparable depths stay home, preserving chain/fragment locality;
///   the strict inequality is the deterministic tie-break).
/// - exactly one candidate live: that one.
/// - both candidates down: the least-loaded live shard anywhere, walking
///   `home, home+1, ...` so equal depths break deterministically —
///   a down shard's traffic spreads over **all** live shards instead of
///   spilling onto one fixed successor.
/// - no live shard: `None` (the caller answers `shard_down`).
///
/// `depths` and `live` are indexed by shard; `home`/`alt` out of range
/// are reduced modulo the shard count.
#[must_use]
pub fn pick_two_choices(home: usize, alt: usize, depths: &[usize], live: &[bool]) -> Option<usize> {
    let n = depths.len().min(live.len());
    if n == 0 {
        return None;
    }
    let home = home % n;
    let alt = alt % n;
    match (live[home], live[alt]) {
        (true, true) => {
            if depths[home] > depths[alt] + ROUTE_AWAY_MARGIN {
                Some(alt)
            } else {
                Some(home)
            }
        }
        (true, false) => Some(home),
        (false, true) => Some(alt),
        (false, false) => (0..n)
            .map(|k| (home + k) % n)
            .filter(|&s| live[s])
            .min_by_key(|&s| depths[s]),
    }
}

/// Live observability counters of one shard, collected in-band by
/// [`CompileService::stats`] (unlike
/// [`ShardStats`](crate::supervisor::ShardStats), which is only
/// available at shutdown).
#[derive(Debug, Clone, Copy)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Requests served so far (including panicked and expired ones).
    pub requests: u64,
    /// Cumulative compiled-chain cache counters (`restored` counts the
    /// chains rewarmed from snapshots), carried across supervisor
    /// restarts.
    pub cache: CacheStats,
    /// Cumulative cross-shape fragment-store counters, carried across
    /// supervisor restarts. Kept separate from `cache`: a chain compile
    /// consults the fragment store once per DAG node, so these count
    /// sub-span lookups, not requests.
    pub frags: FragCacheStats,
}

/// One shard's latency histograms and robustness counters, snapshotted
/// lock-free by [`CompileService::metrics`].
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Liveness at snapshot time.
    pub state: ShardState,
    /// End-to-end latency of every response attributed to this shard
    /// (one sample per delivered response — served, panicked, expired,
    /// shed, or written off).
    pub e2e: Snapshot,
    /// Submission-to-dequeue wait of every request this shard dequeued.
    pub queue_wait: Snapshot,
    /// Wall-clock of each compile + emit attempt (cache hits included).
    pub compile_time: Snapshot,
    /// Supervisor restarts completed.
    pub restarts: u64,
    /// Panics caught.
    pub panics: u64,
    /// Requests answered `deadline_exceeded`.
    pub deadline_exceeded: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Compiled-chain cache hits (cumulative across restarts).
    pub chain_hits: u64,
    /// Compiled-chain cache misses.
    pub chain_misses: u64,
    /// Fragment-store hits (sub-span lookups, not requests).
    pub frag_hits: u64,
    /// Fragment-store misses.
    pub frag_misses: u64,
}

/// Service-wide metrics snapshot: per-shard histograms and counters
/// plus submitter-side bookkeeping, mergeable on demand.
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardMetrics>,
    /// Late responses dropped to preserve exactly-one-response.
    pub late_drops: u64,
}

impl ServiceMetrics {
    /// Total responses recorded across shards (the end-to-end histogram
    /// counts, i.e. one per shard-attributed response).
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.shards.iter().map(|s| s.e2e.count).sum()
    }

    /// All shards' end-to-end histograms merged into one.
    #[must_use]
    pub fn merged_e2e(&self) -> Snapshot {
        let mut out = Snapshot::empty();
        for s in &self.shards {
            out.merge(&s.e2e);
        }
        out
    }

    /// All shards' queue-wait histograms merged into one.
    #[must_use]
    pub fn merged_queue_wait(&self) -> Snapshot {
        let mut out = Snapshot::empty();
        for s in &self.shards {
            out.merge(&s.queue_wait);
        }
        out
    }

    /// All shards' compile-time histograms merged into one.
    #[must_use]
    pub fn merged_compile_time(&self) -> Snapshot {
        let mut out = Snapshot::empty();
        for s in &self.shards {
            out.merge(&s.compile_time);
        }
        out
    }

    /// Render the snapshot in Prometheus text exposition format:
    /// per-shard counters (`gmc_requests_total`, `gmc_restarts_total`,
    /// `gmc_panics_total`, ...) labeled `shard="N"`, the three latency
    /// histograms as cumulative `_bucket{le="..."}` lines in seconds,
    /// and the service-wide `gmc_late_drops_total`. This is what
    /// `gmcc --serve --metrics-file PATH` writes on drain and on every
    /// in-band `{"op":"metrics"}` request.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        type CounterGet = fn(&ShardMetrics) -> u64;
        type SnapshotGet = fn(&ShardMetrics) -> &Snapshot;
        let mut out = String::new();
        let counters: [(&str, CounterGet); 9] = [
            ("gmc_requests_total", |s| s.e2e.count),
            ("gmc_restarts_total", |s| s.restarts),
            ("gmc_panics_total", |s| s.panics),
            ("gmc_deadline_exceeded_total", |s| s.deadline_exceeded),
            ("gmc_shed_total", |s| s.shed),
            ("gmc_chain_cache_hits_total", |s| s.chain_hits),
            ("gmc_chain_cache_misses_total", |s| s.chain_misses),
            ("gmc_frag_cache_hits_total", |s| s.frag_hits),
            ("gmc_frag_cache_misses_total", |s| s.frag_misses),
        ];
        for (name, get) in counters {
            for (i, s) in self.shards.iter().enumerate() {
                write_prom_counter(
                    &mut out,
                    name,
                    &format!("shard=\"{}\"", s.shard),
                    get(s),
                    i == 0,
                );
            }
        }
        write_prom_counter(&mut out, "gmc_late_drops_total", "", self.late_drops, true);
        let histograms: [(&str, SnapshotGet); 3] = [
            ("gmc_request_seconds", |s| &s.e2e),
            ("gmc_queue_wait_seconds", |s| &s.queue_wait),
            ("gmc_compile_seconds", |s| &s.compile_time),
        ];
        for (name, get) in histograms {
            for (i, s) in self.shards.iter().enumerate() {
                get(s).write_prometheus(&mut out, name, &format!("shard=\"{}\"", s.shard), i == 0);
            }
        }
        out
    }
}

/// Work items a shard receives.
pub(crate) enum Job {
    Compile(Box<CompileJob>),
    Snapshot(Sender<SessionSnapshot>),
    Stats(Sender<ShardStatus>),
}

pub(crate) struct CompileJob {
    pub(crate) id: u64,
    pub(crate) name: String,
    pub(crate) shape: Shape,
    pub(crate) emit: Emit,
    /// Absolute deadline, checked again at dequeue.
    pub(crate) deadline: Option<Instant>,
    /// Internal sequence number for exactly-once accounting.
    pub(crate) seq: u64,
    /// When the submitter accepted the request; the zero point of the
    /// end-to-end and queue-wait latency histograms.
    pub(crate) submitted: Instant,
}

/// What shards put on the results channel: the response plus the
/// submission sequence number the service uses to deduplicate against
/// write-offs.
pub(crate) struct Response {
    pub(crate) seq: Option<u64>,
    pub(crate) response: CompileResponse,
}

/// Submitter-side record of an enqueued request.
struct Outstanding {
    id: u64,
    shard: usize,
    deadline: Option<Instant>,
    submitted: Instant,
}

/// A running sharded compile service (see the
/// [crate docs](crate) for the architecture).
pub struct CompileService {
    job_txs: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<ShardStats>>,
    results_rx: Receiver<Response>,
    /// Lock-free per-shard liveness + counters, shared with the workers.
    shared: Vec<Arc<ShardShared>>,
    /// Latest merged snapshot; supervisor restarts rewarm from it.
    latest: Arc<Mutex<Option<Arc<SessionSnapshot>>>>,
    options: CompileOptions,
    faults: FaultPlan,
    queue_cap: usize,
    default_deadline: Option<Duration>,
    routing: RoutingMode,
    snapshot_keep: usize,
    /// Enqueued-but-unanswered requests keyed by sequence number; the
    /// single source of truth for exactly-once delivery.
    outstanding: HashMap<u64, Outstanding>,
    /// Responses synthesized by the submitter (parse errors, shed,
    /// expired, written-off), delivered ahead of the channel.
    ready: VecDeque<CompileResponse>,
    /// Queued + in-flight per shard (admission control reads this).
    pending_by_shard: Vec<usize>,
    next_seq: u64,
    late_drops: u64,
}

impl CompileService {
    /// Spawn the shard pool, restoring the newest decodable snapshot
    /// generation under `config.snapshot_path` (when present) into the
    /// shards its shapes route to. Generations are scanned newest-first
    /// (`<path>`, `<path>.1`, ... up to [`ServeConfig::snapshot_keep`]);
    /// a corrupt or truncated generation is quarantined to
    /// `<generation>.bad` with a logged warning and the scan falls back
    /// to the next-newest — a bad persist file must never take serving
    /// down, and with rotation it does not even cost the warm start.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] if a snapshot generation exists but cannot
    /// be read (I/O, not corruption) or the restored snapshot was taken
    /// under different compile options.
    pub fn start(config: ServeConfig) -> Result<CompileService, ServeError> {
        let shards = config.shards.max(1);
        let snapshot = match &config.snapshot_path {
            Some(path) => {
                Self::load_newest_generation(path, config.snapshot_keep, &config.options)?
                    .map(Arc::new)
            }
            None => None,
        };
        let latest = Arc::new(Mutex::new(snapshot));
        let (results_tx, results_rx) = channel::<Response>();
        let mut job_txs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let mut shared = Vec::with_capacity(shards);
        for index in 0..shards {
            let (tx, rx) = channel();
            let shard_shared = Arc::new(ShardShared::default());
            let ctx = ShardCtx {
                index,
                shards,
                jobs: rx,
                results: results_tx.clone(),
                options: config.options.clone(),
                cache_capacity: config.cache_capacity,
                frag_cache_capacity: config.frag_cache_capacity,
                shared: Arc::clone(&shard_shared),
                latest: Arc::clone(&latest),
                policy: config.restart.clone(),
                faults: config.faults.clone(),
                slow: config.slow_request,
            };
            handles.push(std::thread::spawn(move || shard_main(ctx)));
            job_txs.push(tx);
            shared.push(shard_shared);
        }
        Ok(CompileService {
            job_txs,
            handles,
            results_rx,
            shared,
            latest,
            options: config.options,
            faults: config.faults,
            queue_cap: config.queue_cap.max(1),
            default_deadline: config.default_deadline,
            routing: config.routing,
            snapshot_keep: config.snapshot_keep,
            outstanding: HashMap::new(),
            ready: VecDeque::new(),
            pending_by_shard: vec![0; shards],
            next_seq: 0,
            late_drops: 0,
        })
    }

    /// Scan snapshot generations newest-first and return the first that
    /// decodes; quarantine corrupt generations to `<generation>.bad`.
    fn load_newest_generation(
        path: &PathBuf,
        keep: usize,
        options: &CompileOptions,
    ) -> Result<Option<SessionSnapshot>, ServeError> {
        for generation in 0..keep.max(1) {
            let gen_path = SessionSnapshot::rotation_path(path, generation);
            if !gen_path.exists() {
                continue;
            }
            match SessionSnapshot::load(&gen_path) {
                Ok(snap) => {
                    if !snap.compatible_with(options) {
                        return Err(ServeError::SnapshotMismatch {
                            found: snap.options_fingerprint().to_string(),
                        });
                    }
                    if generation > 0 {
                        eprintln!(
                            "gmc-serve: warm start from snapshot generation {generation} ({})",
                            gen_path.display()
                        );
                    }
                    return Ok(Some(snap));
                }
                Err(e @ PersistError::Io(_)) => return Err(e.into()),
                Err(e) => {
                    // Corrupt/truncated (e.g. a torn write from a crash
                    // mid-save): move it aside and try the next-newest
                    // generation (cold start if none decodes).
                    let bad = Self::quarantine_path(&gen_path);
                    match std::fs::rename(&gen_path, &bad) {
                        Ok(()) => eprintln!(
                            "gmc-serve: snapshot {} is corrupt ({e}); \
                             quarantined to {}",
                            gen_path.display(),
                            bad.display()
                        ),
                        Err(mv) => eprintln!(
                            "gmc-serve: snapshot {} is corrupt ({e}); \
                             quarantine rename failed ({mv})",
                            gen_path.display()
                        ),
                    }
                }
            }
        }
        Ok(None)
    }

    /// First free quarantine name for a corrupt snapshot: `<path>.bad`,
    /// then `<path>.bad.1`, `.bad.2`, … — repeated corruption keeps
    /// every piece of evidence instead of overwriting the last one.
    fn quarantine_path(gen_path: &std::path::Path) -> PathBuf {
        let base = {
            let mut s = gen_path.to_path_buf().into_os_string();
            s.push(".bad");
            PathBuf::from(s)
        };
        if !base.exists() {
            return base;
        }
        for n in 1.. {
            let mut s = base.clone().into_os_string();
            s.push(format!(".{n}"));
            let candidate = PathBuf::from(s);
            if !candidate.exists() {
                return candidate;
            }
        }
        unreachable!("some quarantine suffix is free")
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.job_txs.len()
    }

    /// Outstanding responses (submitted minus received).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.ready.len() + self.outstanding.len()
    }

    /// Select the serving shard for `shape` under the configured
    /// [`RoutingMode`]; `None` when every shard is down.
    fn pick_shard(&self, shape: &Shape) -> Option<usize> {
        let n = self.shards();
        let home = route(shape, n);
        match self.routing {
            RoutingMode::TwoChoices => {
                let live: Vec<bool> = (0..n)
                    .map(|s| self.shared[s].state() != ShardState::Down)
                    .collect();
                pick_two_choices(home, route_alt(shape, n), &self.pending_by_shard, &live)
            }
            RoutingMode::HashMod => (0..n)
                .map(|k| (home + k) % n)
                .find(|&s| self.shared[s].state() != ShardState::Down),
        }
    }

    /// Parse, admit, route, and enqueue a request. Every submission is
    /// answered exactly once through [`CompileService::recv`]; failures
    /// (parse, shed, all-shards-down) produce typed error *responses*,
    /// never errors here, so one bad request cannot stall a stream.
    ///
    /// Admission control: if the target shard already holds
    /// [`ServeConfig::queue_cap`] requests, the request is shed with an
    /// `overloaded` failure instead of growing the queue — on overload
    /// the service degrades by refusing work it could only serve late.
    /// Routing is load-aware ([`pick_two_choices`] by default) and never
    /// targets a shard whose circuit breaker is open.
    pub fn submit(&mut self, request: CompileRequest) {
        let submitted = Instant::now();
        let id = request.id;
        let program = match parse_program(&request.source) {
            Ok(p) => p,
            Err(e) => {
                self.ready.push_back(CompileResponse::failure(
                    id,
                    FailureKind::Parse,
                    format!("parse error: {e}"),
                ));
                return;
            }
        };
        let name = request.name.unwrap_or_else(|| program.lhs().to_lowercase());
        let shape = program.shape().clone();
        let Some(shard) = self.pick_shard(&shape) else {
            self.ready.push_back(CompileResponse::failure(
                id,
                FailureKind::ShardDown,
                "every shard is down (circuit breakers open)",
            ));
            return;
        };
        if self.pending_by_shard[shard] >= self.queue_cap {
            self.shared[shard]
                .shed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            // Shed requests count in the end-to-end histogram too: every
            // response attributed to a shard is one recorded latency.
            self.shared[shard].e2e.record(submitted.elapsed());
            self.ready.push_back(CompileResponse::failure_on(
                id,
                Some(shard),
                FailureKind::Overloaded,
                format!(
                    "shard {shard} queue is full ({} outstanding); request shed",
                    self.queue_cap
                ),
            ));
            return;
        }
        let deadline = request
            .deadline
            .or(self.default_deadline)
            .map(|d| Instant::now() + d);
        let seq = self.next_seq;
        self.next_seq += 1;
        let job = Job::Compile(Box::new(CompileJob {
            id,
            name,
            shape,
            emit: request.emit,
            deadline,
            seq,
            submitted,
        }));
        // A send only fails if the worker thread is gone (it exited
        // outside supervision); answer in-band so accounting balances.
        if self.job_txs[shard].send(job).is_ok() {
            self.outstanding.insert(
                seq,
                Outstanding {
                    id,
                    shard,
                    deadline,
                    submitted,
                },
            );
            self.pending_by_shard[shard] += 1;
        } else {
            self.shared[shard].e2e.record(submitted.elapsed());
            self.ready.push_back(CompileResponse::failure_on(
                id,
                Some(shard),
                FailureKind::ShardDown,
                format!("shard {shard} worker terminated unexpectedly"),
            ));
        }
    }

    /// Match a channel response against the outstanding table; `None`
    /// for late responses to written-off requests (dropped to keep
    /// exactly-one-response).
    fn accept(&mut self, r: Response) -> Option<CompileResponse> {
        match r.seq {
            Some(seq) => {
                if let Some(out) = self.outstanding.remove(&seq) {
                    self.pending_by_shard[out.shard] =
                        self.pending_by_shard[out.shard].saturating_sub(1);
                    self.shared[out.shard].e2e.record(out.submitted.elapsed());
                    Some(r.response)
                } else {
                    self.late_drops += 1;
                    None
                }
            }
            None => Some(r.response),
        }
    }

    /// Write off every outstanding request whose deadline has passed —
    /// the submitter-side half of deadline enforcement, so a shard
    /// sleeping inside a compile (or a fault-injected delay) cannot
    /// stall the response stream past the caller's budget.
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, o)| o.deadline.is_some_and(|d| now > d))
            .map(|(&seq, _)| seq)
            .collect();
        for seq in expired {
            let out = self.outstanding.remove(&seq).expect("seq was just listed");
            self.pending_by_shard[out.shard] = self.pending_by_shard[out.shard].saturating_sub(1);
            self.shared[out.shard]
                .deadline_exceeded
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.shared[out.shard].e2e.record(out.submitted.elapsed());
            self.ready.push_back(CompileResponse::failure_on(
                out.id,
                Some(out.shard),
                FailureKind::DeadlineExceeded,
                format!("deadline expired awaiting shard {}", out.shard),
            ));
        }
    }

    /// Write off the outstanding requests of any shard whose thread has
    /// exited while the service still holds its job sender. Supervised
    /// shards do not die — panics are caught in the worker loop — so
    /// this is a backstop against bugs in the supervisor itself.
    fn reap_dead_shards(&mut self) {
        let dead: Vec<usize> = self
            .handles
            .iter()
            .enumerate()
            .filter(|(shard, handle)| self.pending_by_shard[*shard] > 0 && handle.is_finished())
            .map(|(shard, _)| shard)
            .collect();
        for shard in dead {
            self.shared[shard].set_state(ShardState::Down);
            self.write_off_shard(shard);
        }
    }

    fn write_off_shard(&mut self, shard: usize) {
        let seqs: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, o)| o.shard == shard)
            .map(|(&seq, _)| seq)
            .collect();
        for seq in seqs {
            let out = self.outstanding.remove(&seq).expect("seq was just listed");
            self.shared[shard].e2e.record(out.submitted.elapsed());
            self.ready.push_back(CompileResponse::failure_on(
                out.id,
                Some(shard),
                FailureKind::ShardDown,
                format!("shard {shard} worker terminated with this request in flight"),
            ));
        }
        self.pending_by_shard[shard] = 0;
    }

    /// Write off one outstanding request by its request id — the socket
    /// transport's dropped-connection policy. The entry leaves the
    /// outstanding table (no response will be surfaced for it; there is
    /// no connection left to deliver one to), its shard's pending depth
    /// drops so routing and admission see the truth, and its end-to-end
    /// latency sample is recorded like every other shard-attributed
    /// outcome. The shard may still be working on the request; its
    /// eventual reply hits [`accept`](Self::accept)'s unknown-sequence
    /// path and is dropped and counted (`late_drops`) — exactly-once
    /// stays exact. Returns `false` if no such request is outstanding
    /// (it already completed or was shed).
    pub fn write_off(&mut self, id: u64) -> bool {
        let seq = self
            .outstanding
            .iter()
            .find(|(_, o)| o.id == id)
            .map(|(&seq, _)| seq);
        let Some(seq) = seq else { return false };
        let out = self.outstanding.remove(&seq).expect("seq was just found");
        self.pending_by_shard[out.shard] = self.pending_by_shard[out.shard].saturating_sub(1);
        self.shared[out.shard].e2e.record(out.submitted.elapsed());
        true
    }

    /// Block for the next response; `None` once nothing is outstanding.
    /// Ticks every 25 ms to expire deadlines and reap dead workers, so
    /// it cannot hang on a wedged or crashed shard.
    pub fn recv(&mut self) -> Option<CompileResponse> {
        loop {
            if let Some(r) = self.ready.pop_front() {
                return Some(r);
            }
            if self.outstanding.is_empty() {
                return None;
            }
            match self.results_rx.recv_timeout(Duration::from_millis(25)) {
                Ok(r) => {
                    if let Some(resp) = self.accept(r) {
                        return Some(resp);
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    self.expire_deadlines();
                    self.reap_dead_shards();
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    // Every worker is gone; nothing further can arrive.
                    for shard in 0..self.shards() {
                        if self.pending_by_shard[shard] > 0 {
                            self.shared[shard].set_state(ShardState::Down);
                            self.write_off_shard(shard);
                        }
                    }
                }
            }
        }
    }

    /// Run the submitter-side maintenance [`CompileService::recv`]
    /// performs on its 25 ms timeout tick — deadline expiry and
    /// dead-worker write-offs — without blocking. Front-ends that poll
    /// with [`CompileService::try_recv`] instead of blocking in `recv`
    /// (the socket transport's dispatcher) must call this periodically,
    /// or a wedged shard could stall their streams past the caller's
    /// deadline.
    pub fn tick(&mut self) {
        self.expire_deadlines();
        self.reap_dead_shards();
    }

    /// The next response only if one is already available.
    pub fn try_recv(&mut self) -> Option<CompileResponse> {
        loop {
            if let Some(r) = self.ready.pop_front() {
                return Some(r);
            }
            if self.outstanding.is_empty() {
                return None;
            }
            match self.results_rx.try_recv() {
                Ok(r) => {
                    if let Some(resp) = self.accept(r) {
                        return Some(resp);
                    }
                }
                Err(_) => return None,
            }
        }
    }

    /// Receive every outstanding response (blocking, but deadline- and
    /// crash-safe like [`CompileService::recv`]).
    pub fn drain(&mut self) -> Vec<CompileResponse> {
        let mut out = Vec::with_capacity(self.pending());
        while let Some(r) = self.recv() {
            out.push(r);
        }
        out
    }

    /// Merge every live shard's compiled-chain cache into one snapshot
    /// and publish it as the rewarm source for supervisor restarts.
    /// Waits for shards to reach the snapshot job, so submit-then-
    /// snapshot sees all prior compiles of each shard's queue; down
    /// shards contribute nothing (their last published state lives on in
    /// the previous snapshot they merged into).
    #[must_use]
    pub fn snapshot(&self) -> SessionSnapshot {
        let mut merged: Option<SessionSnapshot> = None;
        for tx in &self.job_txs {
            let (reply_tx, reply_rx) = channel();
            let _ = tx.send(Job::Snapshot(reply_tx));
            // A down shard drops the reply sender without answering.
            if let Ok(snap) = reply_rx.recv() {
                merged = Some(match merged.take() {
                    None => snap,
                    Some(mut m) => {
                        // Shards share one options fingerprint by
                        // construction, so merge cannot fail.
                        let _ = m.merge(snap);
                        m
                    }
                });
            }
        }
        let snap = merged.unwrap_or_else(|| {
            // Every shard down: publish an empty-but-valid snapshot so
            // persistence still works.
            CompileSession::with_options(self.options.clone()).snapshot()
        });
        *self.latest.lock().expect("latest snapshot lock") = Some(Arc::new(snap.clone()));
        snap
    }

    /// Collect every live shard's observability counters in shard order.
    /// The query rides the shard work queues, so it observes every
    /// compile submitted before it; a shard that does not answer within
    /// 2 s (down, or wedged mid-compile) is skipped rather than hanging
    /// the caller. This is what the daemon's in-band `{"op":"stats"}`
    /// request serves.
    #[must_use]
    pub fn stats(&self) -> Vec<ShardStatus> {
        let mut out = Vec::with_capacity(self.job_txs.len());
        for tx in &self.job_txs {
            let (reply_tx, reply_rx) = channel();
            let _ = tx.send(Job::Stats(reply_tx));
            if let Ok(status) = reply_rx.recv_timeout(Duration::from_secs(2)) {
                out.push(status);
            }
        }
        out
    }

    /// Per-shard liveness and robustness counters, collected **without**
    /// touching the work queues — pure atomic reads, so a wedged or down
    /// shard still reports. This is what the daemon's in-band
    /// `{"op":"health"}` request serves.
    #[must_use]
    pub fn health(&self) -> Vec<ShardHealth> {
        use std::sync::atomic::Ordering::Relaxed;
        fn rate(hits: u64, misses: u64) -> f64 {
            let total = hits + misses;
            if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            }
        }
        self.shared
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardHealth {
                shard,
                state: s.state(),
                restarts: s.restarts.load(Relaxed),
                panics: s.panics.load(Relaxed),
                queue_depth: self.pending_by_shard[shard],
                deadline_exceeded: s.deadline_exceeded.load(Relaxed),
                shed: s.shed.load(Relaxed),
                chain_hit_rate: rate(s.chain_hits.load(Relaxed), s.chain_misses.load(Relaxed)),
                frag_hit_rate: rate(s.frag_hits.load(Relaxed), s.frag_misses.load(Relaxed)),
                p99_ms: s.e2e.quantile_ms(0.99),
                queue_wait_p99_ms: s.queue_wait.quantile_ms(0.99),
            })
            .collect()
    }

    /// Full latency/counter snapshot of every shard, collected like
    /// [`CompileService::health`] **without** touching the work queues —
    /// pure atomic reads of the lock-free histograms and counters, so a
    /// wedged or down shard still reports its last state. This is what
    /// the daemon's in-band `{"op":"metrics"}` request and the
    /// `--metrics-file` Prometheus dump serve.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        use std::sync::atomic::Ordering::Relaxed;
        let shards = self
            .shared
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardMetrics {
                shard,
                state: s.state(),
                e2e: s.e2e.snapshot(),
                queue_wait: s.queue_wait.snapshot(),
                compile_time: s.compile_time.snapshot(),
                restarts: s.restarts.load(Relaxed),
                panics: s.panics.load(Relaxed),
                deadline_exceeded: s.deadline_exceeded.load(Relaxed),
                shed: s.shed.load(Relaxed),
                chain_hits: s.chain_hits.load(Relaxed),
                chain_misses: s.chain_misses.load(Relaxed),
                frag_hits: s.frag_hits.load(Relaxed),
                frag_misses: s.frag_misses.load(Relaxed),
            })
            .collect();
        ServiceMetrics {
            shards,
            late_drops: self.late_drops,
        }
    }

    /// [`CompileService::snapshot`] straight to a file, atomically
    /// (temp file + rename, see [`SessionSnapshot::save`]) and with
    /// rotation when [`ServeConfig::snapshot_keep`] > 1 (the previous
    /// generations shift to `<path>.1`, `<path>.2`, ... first, see
    /// [`SessionSnapshot::save_rotated`]) — unless the
    /// `snapshot_torn` or `frag_torn` fault is armed, in which case a
    /// truncated file is written directly to the target path to
    /// simulate a crash mid-write (`frag_torn` cuts inside the trailing
    /// fragment section specifically).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<(), ServeError> {
        let snap = self.snapshot();
        if self.faults.tear_frag_section() {
            // Simulated crash mid-save: the rotation shift completed
            // (renames are atomic), the final write did not.
            SessionSnapshot::rotate_generations(path.as_ref(), self.snapshot_keep)?;
            // Cut mid-way through the final line. The fragment section
            // is the snapshot's tail, so when the snapshot carries
            // fragments this lands inside a `frag` line and the
            // declared entry count no longer matches — the case the
            // count check exists for. (With an empty store the cut
            // degrades to an ordinary torn write.)
            let encoded = snap.encode();
            let body = encoded.trim_end_matches('\n');
            let last_line_start = body.rfind('\n').map_or(0, |i| i + 1);
            let cut = last_line_start + (body.len() - last_line_start) / 2;
            std::fs::write(path.as_ref(), &encoded.as_bytes()[..cut])
                .map_err(PersistError::from)?;
            eprintln!(
                "gmc-serve: injected fault: frag_torn ({cut} of {} bytes written, \
                 {} fragment(s) in the section, no rename)",
                encoded.len(),
                snap.num_fragments()
            );
            return Ok(());
        }
        if self.faults.tear_snapshot() {
            SessionSnapshot::rotate_generations(path.as_ref(), self.snapshot_keep)?;
            // Cut mid-way through the final line: the tail of the write
            // never made it to disk. (Cutting at an arbitrary byte could
            // land inside the options header and masquerade as an
            // options mismatch instead of a corrupt file.)
            let encoded = snap.encode();
            let body = encoded.trim_end_matches('\n');
            let last_line_start = body.rfind('\n').map_or(0, |i| i + 1);
            let cut = last_line_start + (body.len() - last_line_start) / 2;
            let torn = &encoded.as_bytes()[..cut];
            std::fs::write(path.as_ref(), torn).map_err(PersistError::from)?;
            eprintln!(
                "gmc-serve: injected fault: snapshot_torn ({} of {} bytes written, no rename)",
                torn.len(),
                encoded.len()
            );
            return Ok(());
        }
        Ok(snap.save_rotated(path, self.snapshot_keep)?)
    }

    /// Stop accepting work, join every shard, and return the collected
    /// per-shard counters. Pending responses still in the channel are
    /// discarded — call [`CompileService::drain`] first for a graceful
    /// drain.
    #[must_use]
    pub fn shutdown(self) -> ServiceStats {
        let CompileService {
            job_txs,
            handles,
            late_drops,
            ..
        } = self;
        drop(job_txs);
        let shards = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect();
        ServiceStats { shards, late_drops }
    }
}
