//! Multiplexed socket transport for the serving layer: a Unix-domain
//! (or TCP) accept loop that fronts one shared [`CompileService`] with
//! many concurrent JSONL connections — `gmcc --serve --listen <addr>`.
//!
//! # Threading model
//!
//! ```text
//!            accept thread ──┐ (one per daemon; non-blocking accept,
//!                            │  polls the shutdown flag)
//!   conn 1: reader thread ───┤
//!   conn 1: writer thread ◄──┤            ┌── shard 0 thread
//!   conn 2: reader thread ───┼─ dispatcher┼── shard 1 thread
//!   conn 2: writer thread ◄──┤ (owns the  └── ...
//!            ...             │  CompileService)
//! ```
//!
//! Every connection gets **one reader thread** (bounded-line JSONL
//! parsing, so a hostile client cannot grow daemon memory) and **one
//! writer thread** (owns the write half; responses to one connection
//! never block another). The single **dispatcher** — the thread that
//! called [`serve`] — owns the [`CompileService`] unchanged: admission
//! control, deadlines, two-choices routing, and exactly-once response
//! bookkeeping are shared across all connections because there is still
//! exactly one submitter.
//!
//! # Pipelining and id remapping
//!
//! Clients may pipeline requests without waiting: responses come back
//! on the submitting connection in **completion order**, matched by
//! `id`. Ids are the client's own namespace — two connections may both
//! use id 1 — so the dispatcher submits under a private token and
//! remaps each response back to the submitting connection's id on
//! delivery. Requests without an id get their 1-based position in that
//! connection's stream, mirroring the stdin daemon.
//!
//! # Backpressure and the connection lifecycle
//!
//! Per-shard admission ([`ServeConfig::queue_cap`](crate::ServeConfig))
//! bounds the *fleet*; this layer bounds each *connection* so one
//! misbehaving client cannot starve the rest:
//!
//! * **Per-connection admission**
//!   ([`TransportOptions::conn_in_flight_cap`]): a request arriving
//!   while the connection already has `cap` compiles in flight is
//!   answered in band with retryable `overloaded` — the cap → shed →
//!   client-retry loop (`gmcc --connect`'s jittered backoff) converges
//!   instead of letting a greedy pipeliner fill every shard queue. Ops
//!   (`stats`/`health`/`metrics`/`fault`) bypass the cap so a saturated
//!   daemon stays observable.
//! * **Bounded writers** ([`TransportOptions::writer_queue`]): each
//!   writer thread is fed through a bounded channel; the dispatcher
//!   never blocks on a slow peer. Lines that do not fit spill to a
//!   dispatcher-side overflow buffer, and a connection whose overflow
//!   stays non-empty past [`TransportOptions::writer_grace`] — or grows
//!   past one queue's worth — is **slow-closed**: the socket is shut
//!   down and its in-flight work written off through the exactly-once
//!   bookkeeping ([`CompileService::write_off`]; late shard replies are
//!   dropped and counted). Daemon memory stays bounded under a client
//!   that pipelines forever and never reads.
//! * **Lifecycle limits**: [`TransportOptions::max_conns`] refuses
//!   connections over the limit with a typed in-band `overloaded` line
//!   before closing; [`TransportOptions::idle_timeout`] reaps
//!   connections with zero in-flight work; reads poll on a timeout and
//!   writes carry an OS-level deadline, so no socket thread can block
//!   forever on a dead peer.
//!
//! Every shed/refusal/slow-close/reap increments a transport counter
//! (`conn_shed`, `conn_refused`, `conn_slow_closed`, `conn_idle_reaped`,
//! `conn_written_off`) that rides health/metrics responses and the
//! Prometheus dump.
//!
//! # Shutdown
//!
//! The shutdown flag (SIGTERM/SIGINT in `gmcc`) runs the same graceful
//! drain as the stdin daemon: the accept loop stops, readers stop
//! pulling new requests, everything in flight is answered to its
//! connection, and [`serve`] returns the service (still running) so the
//! caller can write the final snapshot and metrics dump before
//! [`CompileService::shutdown`].
//!
//! # Transport counters
//!
//! The dispatcher keeps live transport counters — connections open /
//! accepted / closed, per-connection in-flight, and the backpressure
//! counters above — snapshotted as [`TransportSnapshot`]:
//! `{"op":"health"}` and `{"op":"metrics"}` responses on a socket carry
//! them as a `"transport"` object, and the Prometheus dump gains a
//! `gmc_connections` gauge (plus accepted/closed totals, per-connection
//! in-flight gauges, and `gmc_conn_*_total` counters).

use crate::fault::FaultPlan;
use crate::jsonl;
use crate::service::{CompileRequest, CompileResponse, CompileService, Emit, FailureKind};
use gmc_obs::{write_prom_counter, write_prom_gauge};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError,
};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked threads (accept loop, connection readers) poll the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A parsed `--listen` address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// Unix-domain socket at this path.
    Unix(PathBuf),
    /// TCP socket at this `host:port`.
    Tcp(String),
}

impl ListenAddr {
    /// Parse an address: `unix:<path>` and `tcp:<host:port>` are
    /// explicit; a bare value that parses as a socket address (e.g.
    /// `127.0.0.1:7070`) is TCP, anything else is a Unix socket path.
    #[must_use]
    pub fn parse(s: &str) -> ListenAddr {
        if let Some(path) = s.strip_prefix("unix:") {
            ListenAddr::Unix(PathBuf::from(path))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            ListenAddr::Tcp(addr.to_string())
        } else if s.parse::<std::net::SocketAddr>().is_ok() {
            ListenAddr::Tcp(s.to_string())
        } else {
            ListenAddr::Unix(PathBuf::from(s))
        }
    }
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Unix(path) => write!(f, "unix:{}", path.display()),
            ListenAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

enum ListenerKind {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// A bound-but-not-yet-serving socket listener.
pub struct SocketListener {
    inner: ListenerKind,
    /// The path to unlink when serving ends (Unix sockets only).
    cleanup: Option<PathBuf>,
    local: ListenAddr,
}

impl SocketListener {
    /// Bind the address. A stale Unix socket file at the path is
    /// removed first — the daemon takes over the address — and removed
    /// again when [`serve`] returns.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &ListenAddr) -> std::io::Result<SocketListener> {
        match addr {
            ListenAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok(SocketListener {
                    inner: ListenerKind::Unix(listener),
                    cleanup: Some(path.clone()),
                    local: addr.clone(),
                })
            }
            ListenAddr::Tcp(spec) => {
                let listener = TcpListener::bind(spec)?;
                listener.set_nonblocking(true)?;
                let local = ListenAddr::Tcp(
                    listener
                        .local_addr()
                        .map(|a| a.to_string())
                        .unwrap_or_else(|_| spec.clone()),
                );
                Ok(SocketListener {
                    inner: ListenerKind::Tcp(listener),
                    cleanup: None,
                    local,
                })
            }
        }
    }

    /// The actually-bound address (TCP port 0 resolves to the assigned
    /// port, which is how tests bind without collisions).
    #[must_use]
    pub fn local_addr(&self) -> &ListenAddr {
        &self.local
    }

    fn accept(&self) -> std::io::Result<SocketStream> {
        match &self.inner {
            ListenerKind::Unix(l) => l.accept().map(|(s, _)| SocketStream::Unix(s)),
            ListenerKind::Tcp(l) => l.accept().map(|(s, _)| SocketStream::Tcp(s)),
        }
    }
}

/// One connected socket stream (either family), used by the transport
/// internally and by clients (tests, `bench_serve --load`,
/// `gmcc --connect`) via [`SocketStream::connect`].
#[derive(Debug)]
pub enum SocketStream {
    /// A Unix-domain stream.
    Unix(UnixStream),
    /// A TCP stream.
    Tcp(TcpStream),
}

impl SocketStream {
    /// Connect to a listening daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: &ListenAddr) -> std::io::Result<SocketStream> {
        match addr {
            ListenAddr::Unix(path) => UnixStream::connect(path).map(SocketStream::Unix),
            ListenAddr::Tcp(spec) => TcpStream::connect(spec).map(SocketStream::Tcp),
        }
    }

    /// Clone the handle (reader/writer halves share one socket).
    ///
    /// # Errors
    ///
    /// Propagates the underlying `try_clone` failure.
    pub fn try_clone(&self) -> std::io::Result<SocketStream> {
        match self {
            SocketStream::Unix(s) => s.try_clone().map(SocketStream::Unix),
            SocketStream::Tcp(s) => s.try_clone().map(SocketStream::Tcp),
        }
    }

    /// Bound the blocking time of reads (the transport's readers poll
    /// the shutdown flag between timeouts).
    ///
    /// # Errors
    ///
    /// Propagates the underlying setter failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            SocketStream::Unix(s) => s.set_read_timeout(timeout),
            SocketStream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Bound the blocking time of writes — the transport's write
    /// deadline, so a writer thread cannot block forever on a peer
    /// that stopped reading.
    ///
    /// # Errors
    ///
    /// Propagates the underlying setter failure.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            SocketStream::Unix(s) => s.set_write_timeout(timeout),
            SocketStream::Tcp(s) => s.set_write_timeout(timeout),
        }
    }

    /// Close the write half, signalling EOF to the daemon while
    /// responses can still stream back (how a client says "no more
    /// requests").
    ///
    /// # Errors
    ///
    /// Propagates the underlying shutdown failure.
    pub fn shutdown_write(&self) -> std::io::Result<()> {
        match self {
            SocketStream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
            SocketStream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }

    /// Sever the connection in both directions: blocked reads see EOF
    /// and blocked writes fail immediately, on every clone of the
    /// underlying socket — how the dispatcher force-closes a
    /// connection whose reader/writer threads hold their own handles.
    ///
    /// # Errors
    ///
    /// Propagates the underlying shutdown failure.
    pub fn shutdown_both(&self) -> std::io::Result<()> {
        match self {
            SocketStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            SocketStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for SocketStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            SocketStream::Unix(s) => s.read(buf),
            SocketStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for SocketStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            SocketStream::Unix(s) => s.write(buf),
            SocketStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            SocketStream::Unix(s) => s.flush(),
            SocketStream::Tcp(s) => s.flush(),
        }
    }
}

/// Transport configuration (the socket-mode analogue of the stdin
/// daemon's flags).
#[derive(Debug, Clone)]
pub struct TransportOptions {
    /// Emit selector applied to requests without an `emit` field.
    pub default_emit: Emit,
    /// Honor in-band `{"op":"fault"}` requests (`--enable-faults`).
    pub enable_faults: bool,
    /// The fault plan `{"op":"fault"}` re-arms (shared with the
    /// service's plan by cloning).
    pub faults: FaultPlan,
    /// Bound on one request line (`--max-line-bytes`); oversized lines
    /// are consumed and answered `bad_request` without being buffered.
    pub max_line_bytes: usize,
    /// Prometheus dump refreshed on every `{"op":"metrics"}` request,
    /// with transport gauges appended (`--metrics-file`).
    pub metrics_file: Option<PathBuf>,
    /// Attach the C++ runtime header to the first `.cpp`-carrying
    /// response of **each connection** (every client needs it once).
    pub attach_runtime_header: bool,
    /// Per-connection admission cap (`--conn-in-flight-cap`): a compile
    /// request arriving while the connection already has this many in
    /// flight is shed in band with retryable `overloaded`. `0` disables
    /// the cap.
    pub conn_in_flight_cap: usize,
    /// Connection limit (`--max-conns`): a connection accepted past the
    /// limit is refused with one typed in-band `overloaded` line and
    /// closed. `0` disables the limit.
    pub max_conns: usize,
    /// Reap connections with zero in-flight work after this long
    /// without a request line (`--idle-timeout-ms`); `None` disables.
    pub idle_timeout: Option<Duration>,
    /// Bounded writer-queue depth per connection (lines). The
    /// dispatcher never blocks on a full queue — excess lines spill to
    /// an overflow buffer governed by [`writer_grace`](Self::writer_grace).
    pub writer_queue: usize,
    /// Slow-consumer grace window: a connection whose writer queue
    /// stays full (overflow non-empty) this long — or whose overflow
    /// outgrows one queue's worth — is closed and its in-flight work
    /// written off. Also bounds each socket write (write deadline).
    pub writer_grace: Duration,
}

impl Default for TransportOptions {
    fn default() -> Self {
        TransportOptions {
            default_emit: Emit::default(),
            enable_faults: false,
            faults: FaultPlan::new(),
            max_line_bytes: 1 << 20,
            metrics_file: None,
            attach_runtime_header: true,
            conn_in_flight_cap: 64,
            max_conns: 0,
            idle_timeout: None,
            writer_queue: 128,
            writer_grace: Duration::from_secs(2),
        }
    }
}

/// Point-in-time transport counters, rendered into `{"op":"health"}` /
/// `{"op":"metrics"}` responses ([`jsonl::health_line_with_transport`])
/// and the Prometheus dump.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransportSnapshot {
    /// Connections currently open.
    pub open: u64,
    /// Connections accepted since start.
    pub accepted: u64,
    /// Connections closed since start.
    pub closed: u64,
    /// `(connection id, in-flight compile requests)` per open
    /// connection, in accept order. Connection ids are 1-based and
    /// never reused within a daemon's lifetime.
    pub connections: Vec<(u64, u64)>,
    /// Requests shed at the per-connection in-flight cap.
    pub conn_shed: u64,
    /// Connections closed by the slow-consumer policy (writer queue
    /// full past the grace window, or overflow past one queue's worth).
    pub conn_slow_closed: u64,
    /// Connections reaped by the idle timeout.
    pub conn_idle_reaped: u64,
    /// Connections refused at the `max_conns` limit.
    pub conn_refused: u64,
    /// In-flight requests written off because their connection died
    /// (slow-close, idle reap with a racing request, peer gone,
    /// injected `conn_drop`).
    pub conn_written_off: u64,
}

impl TransportSnapshot {
    /// Append the transport gauges/counters in Prometheus text
    /// exposition format: the `gmc_connections` open-connection gauge,
    /// accepted/closed totals, and one `gmc_conn_in_flight` gauge per
    /// open connection.
    pub fn write_prometheus(&self, out: &mut String) {
        write_prom_gauge(out, "gmc_connections", "", self.open, true);
        write_prom_counter(
            out,
            "gmc_connections_accepted_total",
            "",
            self.accepted,
            true,
        );
        write_prom_counter(out, "gmc_connections_closed_total", "", self.closed, true);
        write_prom_counter(out, "gmc_conn_shed_total", "", self.conn_shed, true);
        write_prom_counter(
            out,
            "gmc_conn_slow_closed_total",
            "",
            self.conn_slow_closed,
            true,
        );
        write_prom_counter(
            out,
            "gmc_conn_idle_reaped_total",
            "",
            self.conn_idle_reaped,
            true,
        );
        write_prom_counter(out, "gmc_conn_refused_total", "", self.conn_refused, true);
        write_prom_counter(
            out,
            "gmc_conn_written_off_total",
            "",
            self.conn_written_off,
            true,
        );
        for (i, (conn, in_flight)) in self.connections.iter().enumerate() {
            write_prom_gauge(
                out,
                "gmc_conn_in_flight",
                &format!("conn=\"{conn}\""),
                *in_flight,
                i == 0,
            );
        }
    }
}

/// What [`serve`] reports when the daemon drains.
#[derive(Debug, Clone, Default)]
pub struct TransportReport {
    /// Connections accepted over the daemon's lifetime.
    pub accepted: u64,
    /// Request lines processed (all connections, ops included).
    pub requests: u64,
    /// In-band failure responses delivered (`"ok":false`).
    pub failures: u64,
    /// Final transport counters (for the drain-time Prometheus dump).
    pub snapshot: TransportSnapshot,
}

/// What connection readers and the accept loop feed the dispatcher.
enum Event {
    Opened {
        conn: u64,
        writer: SyncSender<String>,
        writer_handle: JoinHandle<()>,
        /// A control clone of the socket: `shutdown_both` on it severs
        /// the reader's and writer's handles too (force-close).
        ctrl: SocketStream,
    },
    Line {
        conn: u64,
        line_no: u64,
        line: String,
    },
    Oversized {
        conn: u64,
        line_no: u64,
    },
    BadUtf8 {
        conn: u64,
        line_no: u64,
    },
    Eof {
        conn: u64,
    },
}

/// One bounded line read from a socket (see the stdin daemon's
/// equivalent in the `gmc` driver — same bound, same semantics, plus
/// shutdown-flag polling on read timeouts).
enum SocketLine {
    Line(String),
    Oversized,
    BadUtf8,
    Eof,
    Shutdown,
}

fn read_bounded_line(
    reader: &mut BufReader<SocketStream>,
    max: usize,
    shutdown: &AtomicBool,
) -> SocketLine {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    // Drain: stop pulling new requests (a partial line
                    // is abandoned, exactly like unread stdin).
                    return SocketLine::Shutdown;
                }
                continue;
            }
            // Connection reset and friends: the peer is gone.
            Err(_) => return SocketLine::Eof,
        };
        if chunk.is_empty() {
            if buf.is_empty() && !oversized {
                return SocketLine::Eof;
            }
            break; // final line without trailing newline
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !oversized && buf.len() + pos <= max {
                    buf.extend_from_slice(&chunk[..pos]);
                } else {
                    oversized = true;
                }
                reader.consume(pos + 1);
                break;
            }
            None => {
                let len = chunk.len();
                if !oversized && buf.len() + len <= max {
                    buf.extend_from_slice(chunk);
                } else {
                    oversized = true;
                    buf.clear();
                }
                reader.consume(len);
            }
        }
    }
    if oversized {
        return SocketLine::Oversized;
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(s) => SocketLine::Line(s),
        Err(_) => SocketLine::BadUtf8,
    }
}

fn reader_loop(
    stream: SocketStream,
    conn: u64,
    max_line: usize,
    events: &Sender<Event>,
    shutdown: &AtomicBool,
    faults: &FaultPlan,
) {
    let mut reader = BufReader::new(stream);
    let mut line_no: u64 = 0;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match read_bounded_line(&mut reader, max_line, shutdown) {
            SocketLine::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                line_no += 1;
                // Injected garbage: this request line arrives as
                // non-UTF-8 bytes (answered in band as bad_request).
                let event = if faults.conn_garbage_hit(conn, line_no) {
                    Event::BadUtf8 { conn, line_no }
                } else {
                    Event::Line {
                        conn,
                        line_no,
                        line,
                    }
                };
                if events.send(event).is_err() {
                    break;
                }
            }
            SocketLine::Oversized => {
                line_no += 1;
                if events.send(Event::Oversized { conn, line_no }).is_err() {
                    break;
                }
            }
            SocketLine::BadUtf8 => {
                line_no += 1;
                if events.send(Event::BadUtf8 { conn, line_no }).is_err() {
                    break;
                }
            }
            SocketLine::Eof | SocketLine::Shutdown => break,
        }
    }
    let _ = events.send(Event::Eof { conn });
}

fn writer_loop(stream: SocketStream, lines: &Receiver<String>, conn: u64, faults: &FaultPlan) {
    let mut out = std::io::BufWriter::new(stream);
    while let Ok(line) = lines.recv() {
        // Injected slowloris: this connection's peer reads slowly, so
        // every line takes `conn_stall` ms to leave the daemon.
        if let Some(stall) = faults.conn_stall(conn) {
            std::thread::sleep(stall);
        }
        let write = out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .and_then(|()| out.flush());
        if write.is_err() {
            break; // peer gone; the dispatcher notices on its next send
        }
    }
}

/// Dispatcher-side state of one open connection.
struct ConnState {
    writer: SyncSender<String>,
    writer_handle: Option<JoinHandle<()>>,
    /// Control clone of the socket for force-closes.
    ctrl: SocketStream,
    in_flight: u64,
    header_sent: bool,
    /// Reader saw EOF: close once `in_flight` and the overflow drain.
    draining: bool,
    /// Lines that did not fit the bounded writer queue; flushed
    /// opportunistically, governed by the slow-consumer policy.
    overflow: VecDeque<String>,
    /// When the writer queue first refused a line (overflow became
    /// non-empty); cleared when the overflow drains.
    blocked_since: Option<Instant>,
    /// Last request line (or delivery) — feeds the idle timeout.
    last_activity: Instant,
    /// Outbound lines handed to this connection (1-based when the next
    /// line is `sent_lines + 1`); drives the `conn_drop` fault.
    sent_lines: u64,
}

/// How a connection is torn down.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CloseMode {
    /// Flush everything queued to the peer, then sever: drop the
    /// writer's sender (it drains the queue), join it, shut the socket
    /// down so the peer sees EOF even if it never half-closed.
    Graceful,
    /// Sever first, then reap: shut the socket down (unblocking a
    /// writer stuck in a send to a non-reading peer), drop the sender,
    /// join. Queued/overflowed lines are discarded.
    Abort,
}

struct Dispatcher {
    service: CompileService,
    options: TransportOptions,
    conns: HashMap<u64, ConnState>,
    /// Accept order of open connections (snapshot stability).
    conn_order: Vec<u64>,
    /// Private submission token → (connection, client id).
    pending: HashMap<u64, (u64, u64)>,
    next_token: u64,
    accepted: u64,
    closed: u64,
    requests: u64,
    failures: u64,
    conn_shed: u64,
    conn_slow_closed: u64,
    conn_idle_reaped: u64,
    conn_refused: u64,
    conn_written_off: u64,
}

impl Dispatcher {
    fn transport_snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            open: self.conns.len() as u64,
            accepted: self.accepted,
            closed: self.closed,
            connections: self
                .conn_order
                .iter()
                .filter_map(|conn| self.conns.get(conn).map(|state| (*conn, state.in_flight)))
                .collect(),
            conn_shed: self.conn_shed,
            conn_slow_closed: self.conn_slow_closed,
            conn_idle_reaped: self.conn_idle_reaped,
            conn_refused: self.conn_refused,
            conn_written_off: self.conn_written_off,
        }
    }

    /// Close a connection and write off whatever it still has in
    /// flight: each pending token leaves the exactly-once tables
    /// ([`CompileService::write_off`]) so late shard replies are
    /// dropped and counted instead of delivered to nowhere.
    fn close_conn(&mut self, conn: u64, mode: CloseMode) {
        let Some(state) = self.conns.remove(&conn) else {
            return;
        };
        self.conn_order.retain(|&c| c != conn);
        self.closed += 1;
        let tokens: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, (c, _))| *c == conn)
            .map(|(&t, _)| t)
            .collect();
        for token in tokens {
            self.pending.remove(&token);
            self.conn_written_off += 1;
            // `false` means the response already left the service and
            // sits in our delivery path; `deliver` drops it (the token
            // is no longer pending) — still exactly once.
            let _ = self.service.write_off(token);
        }
        if mode == CloseMode::Abort {
            // Sever before joining: a writer blocked mid-send to a
            // non-reading peer wakes with an error instead of wedging
            // the dispatcher on the join below.
            let _ = state.ctrl.shutdown_both();
        }
        drop(state.writer);
        if let Some(handle) = state.writer_handle {
            let _ = handle.join();
        }
        if mode == CloseMode::Graceful {
            // Writer has flushed; now tell a peer that never
            // half-closed that this side is done.
            let _ = state.ctrl.shutdown_both();
        }
    }

    /// Hand a rendered line to a connection's writer without ever
    /// blocking the dispatcher: a full queue spills to the overflow
    /// buffer (slow-consumer policy applies later), a dead writer or an
    /// injected `conn_drop` closes the connection. Returns `false` iff
    /// the line will never reach the peer.
    fn send_line(&mut self, conn: u64, line: String) -> bool {
        let next = match self.conns.get(&conn) {
            Some(state) => state.sent_lines + 1,
            None => return false,
        };
        if self.options.faults.conn_drop_hit(conn, next) {
            // Abrupt disconnect in place of this line.
            self.close_conn(conn, CloseMode::Abort);
            return false;
        }
        let state = self.conns.get_mut(&conn).expect("conn checked above");
        state.sent_lines = next;
        if !state.overflow.is_empty() {
            state.overflow.push_back(line);
            return true;
        }
        match state.writer.try_send(line) {
            Ok(()) => true,
            Err(TrySendError::Full(line)) => {
                state.blocked_since = Some(Instant::now());
                state.overflow.push_back(line);
                true
            }
            Err(TrySendError::Disconnected(_)) => {
                // Writer thread exited: the peer is gone.
                self.close_conn(conn, CloseMode::Abort);
                false
            }
        }
    }

    /// Per-loop writer maintenance: drain overflow buffers into freed
    /// queue slots, slow-close connections blocked past the grace
    /// window (or with more than one queue's worth spilled), and finish
    /// the graceful close of drained connections.
    fn flush_writers(&mut self) {
        enum Verdict {
            Keep,
            SlowClose,
            DrainClose,
            PeerGone,
        }
        let conns: Vec<u64> = self.conn_order.clone();
        for conn in conns {
            let verdict = {
                let Some(state) = self.conns.get_mut(&conn) else {
                    continue;
                };
                let mut peer_gone = false;
                while let Some(line) = state.overflow.pop_front() {
                    match state.writer.try_send(line) {
                        Ok(()) => {}
                        Err(TrySendError::Full(line)) => {
                            state.overflow.push_front(line);
                            break;
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            peer_gone = true;
                            break;
                        }
                    }
                }
                if peer_gone {
                    Verdict::PeerGone
                } else if state.overflow.is_empty() {
                    state.blocked_since = None;
                    if state.draining && state.in_flight == 0 {
                        Verdict::DrainClose
                    } else {
                        Verdict::Keep
                    }
                } else {
                    let over_budget = state.overflow.len() > self.options.writer_queue;
                    let grace_expired = state
                        .blocked_since
                        .get_or_insert_with(Instant::now)
                        .elapsed()
                        >= self.options.writer_grace;
                    if over_budget || grace_expired {
                        Verdict::SlowClose
                    } else {
                        Verdict::Keep
                    }
                }
            };
            match verdict {
                Verdict::Keep => {}
                Verdict::SlowClose => {
                    self.conn_slow_closed += 1;
                    self.close_conn(conn, CloseMode::Abort);
                }
                Verdict::DrainClose => self.close_conn(conn, CloseMode::Graceful),
                Verdict::PeerGone => self.close_conn(conn, CloseMode::Abort),
            }
        }
    }

    /// Reap connections with zero in-flight work that have been silent
    /// past the idle timeout. A request arriving in the same tick wins:
    /// events are drained before this runs, and any in-flight work (or
    /// an undelivered overflow) exempts the connection.
    fn reap_idle(&mut self) {
        let Some(timeout) = self.options.idle_timeout else {
            return;
        };
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, s)| {
                s.in_flight == 0
                    && s.overflow.is_empty()
                    && !s.draining
                    && s.last_activity.elapsed() >= timeout
            })
            .map(|(&c, _)| c)
            .collect();
        for conn in idle {
            self.conn_idle_reaped += 1;
            self.close_conn(conn, CloseMode::Graceful);
        }
    }

    /// `true` if any connection has spilled lines waiting on its writer
    /// (the dispatcher should poll fast rather than sleep).
    fn has_backlog(&self) -> bool {
        self.conns.values().any(|s| !s.overflow.is_empty())
    }

    /// Deliver a service response to its submitting connection,
    /// remapping the private token back to the client's id.
    fn deliver(&mut self, mut response: CompileResponse) {
        let Some((conn, client_id)) = self.pending.remove(&response.id) else {
            // Unknown token: a response for a request whose connection
            // was closed and written off while it was in flight (or,
            // defensively, a token we never submitted). Drop it — the
            // write-off already accounted for it.
            return;
        };
        response.id = client_id;
        if response.result.is_err() {
            self.failures += 1;
        }
        let Some(state) = self.conns.get_mut(&conn) else {
            return; // connection closed while the request was in flight
        };
        state.in_flight = state.in_flight.saturating_sub(1);
        state.last_activity = Instant::now();
        if self.options.attach_runtime_header && !state.header_sent {
            if let Ok(artifacts) = &mut response.result {
                if artifacts.files.iter().any(|(n, _)| n.ends_with(".cpp")) {
                    artifacts.files.insert(
                        0,
                        ("gmc_runtime.hpp".to_string(), crate::emit_runtime_header()),
                    );
                    state.header_sent = true;
                }
            }
        }
        let close = state.draining && state.in_flight == 0 && state.overflow.is_empty();
        let sent = self.send_line(conn, jsonl::response_line(&response));
        if !sent {
            // The connection died with this response in hand; the
            // request is written off like its siblings.
            self.conn_written_off += 1;
            return;
        }
        if close && self.conns.get(&conn).is_some_and(|s| s.overflow.is_empty()) {
            self.close_conn(conn, CloseMode::Graceful);
        }
    }

    fn bad_request(&mut self, conn: u64, id: u64, message: String) {
        self.failures += 1;
        let response = CompileResponse::failure(id, FailureKind::BadRequest, message);
        let _ = self.send_line(conn, jsonl::response_line(&response));
    }

    fn handle_line(&mut self, conn: u64, line_no: u64, line: &str) {
        let Some(state) = self.conns.get_mut(&conn) else {
            return; // closed (slow-close/reap/refusal) while the line was in transit
        };
        state.last_activity = Instant::now();
        self.requests += 1;
        let raw = match jsonl::parse_request(line) {
            Ok(raw) => raw,
            Err(msg) => {
                self.bad_request(conn, line_no, format!("bad request line: {msg}"));
                return;
            }
        };
        let id = raw.id.unwrap_or(line_no);
        match raw.op.as_deref() {
            Some("stats") => {
                let line = jsonl::stats_line(id, &self.service.stats());
                self.send_line(conn, line);
            }
            Some("health") => {
                let line = jsonl::health_line_with_transport(
                    id,
                    &self.service.health(),
                    &self.transport_snapshot(),
                );
                self.send_line(conn, line);
            }
            Some("metrics") => {
                let metrics = self.service.metrics();
                let transport = self.transport_snapshot();
                // A metrics query also refreshes the Prometheus dump,
                // transport gauges included.
                if let Some(path) = &self.options.metrics_file {
                    let mut text = metrics.to_prometheus();
                    transport.write_prometheus(&mut text);
                    if let Err(e) = std::fs::write(path, text) {
                        eprintln!(
                            "gmc-serve: writing metrics file {} failed: {e}",
                            path.display()
                        );
                    }
                }
                let line = jsonl::metrics_line_with_transport(id, &metrics, &transport);
                self.send_line(conn, line);
            }
            Some("fault") if !self.options.enable_faults => {
                self.bad_request(
                    conn,
                    id,
                    "fault injection is disabled (run with --enable-faults)".into(),
                );
            }
            Some("fault") => match raw.spec.as_deref() {
                Some(spec) => match self.options.faults.arm(spec) {
                    Ok(()) => {
                        self.send_line(conn, jsonl::ack_line(id, "fault"));
                    }
                    Err(e) => self.bad_request(conn, id, format!("bad fault spec: {e}")),
                },
                None => self.bad_request(conn, id, "fault op needs a `spec` field".into()),
            },
            Some(other) => self.bad_request(conn, id, format!("unknown op `{other}`")),
            None => {
                let emit = match raw.emit.as_deref().map(Emit::parse) {
                    None => self.options.default_emit,
                    Some(Ok(emit)) => emit,
                    Some(Err(msg)) => {
                        self.bad_request(conn, id, msg);
                        return;
                    }
                };
                // Per-connection admission: over the cap, shed in band
                // with retryable `overloaded` (ops bypass the cap, so a
                // saturated daemon stays observable).
                let cap = self.options.conn_in_flight_cap;
                if cap > 0
                    && self
                        .conns
                        .get(&conn)
                        .is_some_and(|s| s.in_flight >= cap as u64)
                {
                    self.conn_shed += 1;
                    self.failures += 1;
                    let response = CompileResponse::failure(
                        id,
                        FailureKind::Overloaded,
                        format!(
                            "connection in-flight cap reached ({cap} outstanding); \
                             read a response before sending more, or retry"
                        ),
                    );
                    let _ = self.send_line(conn, jsonl::response_line(&response));
                    return;
                }
                let token = self.next_token;
                self.next_token += 1;
                self.pending.insert(token, (conn, id));
                if let Some(state) = self.conns.get_mut(&conn) {
                    state.in_flight += 1;
                }
                self.service.submit(CompileRequest {
                    id: token,
                    name: raw.name,
                    source: raw.source,
                    emit,
                    deadline: raw.deadline_ms.map(Duration::from_millis),
                });
            }
        }
    }

    fn handle_event(&mut self, event: Event) {
        match event {
            Event::Opened {
                conn,
                writer,
                writer_handle,
                ctrl,
            } => {
                self.accepted += 1;
                if self.options.max_conns > 0 && self.conns.len() >= self.options.max_conns {
                    // Accept-then-refuse: the peer gets one typed line
                    // telling it why (and that retrying is sane), then
                    // the connection closes.
                    self.conn_refused += 1;
                    self.closed += 1;
                    self.failures += 1;
                    let refusal = CompileResponse::failure(
                        0,
                        FailureKind::Overloaded,
                        format!(
                            "connection refused: daemon at max-conns ({}); retry later",
                            self.options.max_conns
                        ),
                    );
                    let _ = writer.try_send(jsonl::response_line(&refusal));
                    drop(writer);
                    let _ = writer_handle.join();
                    let _ = ctrl.shutdown_both();
                    return;
                }
                self.conn_order.push(conn);
                self.conns.insert(
                    conn,
                    ConnState {
                        writer,
                        writer_handle: Some(writer_handle),
                        ctrl,
                        in_flight: 0,
                        header_sent: false,
                        draining: false,
                        overflow: VecDeque::new(),
                        blocked_since: None,
                        last_activity: Instant::now(),
                        sent_lines: 0,
                    },
                );
            }
            Event::Line {
                conn,
                line_no,
                line,
            } => self.handle_line(conn, line_no, &line),
            Event::Oversized { conn, line_no } => {
                if !self.conns.contains_key(&conn) {
                    return;
                }
                self.requests += 1;
                let max = self.options.max_line_bytes;
                self.bad_request(conn, line_no, format!("request line exceeds {max} bytes"));
            }
            Event::BadUtf8 { conn, line_no } => {
                if !self.conns.contains_key(&conn) {
                    return;
                }
                self.requests += 1;
                self.bad_request(conn, line_no, "request line is not valid UTF-8".into());
            }
            Event::Eof { conn } => {
                let close_now = match self.conns.get_mut(&conn) {
                    Some(state) => {
                        state.draining = true;
                        state.in_flight == 0 && state.overflow.is_empty()
                    }
                    None => false,
                };
                if close_now {
                    self.close_conn(conn, CloseMode::Graceful);
                }
            }
        }
    }
}

/// Run the socket daemon: accept connections on `listener` and serve
/// them from one shared `service` until `shutdown` is set (or the
/// listener dies), then drain gracefully. Returns the still-running
/// service — the caller persists the final snapshot and metrics dump,
/// then calls [`CompileService::shutdown`] — plus the transport report.
///
/// The calling thread becomes the dispatcher (see the module docs for
/// the full threading model).
///
/// # Errors
///
/// Propagates listener I/O failures surfaced by the accept loop.
pub fn serve(
    listener: SocketListener,
    service: CompileService,
    options: TransportOptions,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<(CompileService, TransportReport)> {
    let cleanup = listener.cleanup.clone();
    let (events_tx, events) = channel::<Event>();
    let accept_shutdown = Arc::clone(&shutdown);
    let max_line = options.max_line_bytes;
    let writer_queue = options.writer_queue.max(1);
    // Write deadline: a single socket write may block at most this long
    // (the grace window, floored so tiny test windows don't trip
    // healthy peers on a loaded host).
    let write_timeout = options.writer_grace.max(Duration::from_millis(250));
    let accept_faults = options.faults.clone();
    let accept_handle: JoinHandle<std::io::Result<()>> = std::thread::spawn(move || {
        let mut next_conn: u64 = 0;
        loop {
            if accept_shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            match listener.accept() {
                Ok(stream) => {
                    next_conn += 1;
                    let conn = next_conn;
                    stream.set_read_timeout(Some(POLL_INTERVAL))?;
                    let write_half = stream.try_clone()?;
                    write_half.set_write_timeout(Some(write_timeout))?;
                    let ctrl = stream.try_clone()?;
                    let (writer_tx, writer_rx) = sync_channel::<String>(writer_queue);
                    let writer_faults = accept_faults.clone();
                    let writer_handle = std::thread::spawn(move || {
                        writer_loop(write_half, &writer_rx, conn, &writer_faults);
                    });
                    // Opened is enqueued before the reader spawns, so
                    // the dispatcher never sees a Line for an unknown
                    // connection.
                    if events_tx
                        .send(Event::Opened {
                            conn,
                            writer: writer_tx,
                            writer_handle,
                            ctrl,
                        })
                        .is_err()
                    {
                        return Ok(()); // dispatcher gone
                    }
                    let reader_events = events_tx.clone();
                    let reader_shutdown = Arc::clone(&accept_shutdown);
                    let reader_faults = accept_faults.clone();
                    std::thread::spawn(move || {
                        reader_loop(
                            stream,
                            conn,
                            max_line,
                            &reader_events,
                            &reader_shutdown,
                            &reader_faults,
                        );
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    });

    let mut d = Dispatcher {
        service,
        options,
        conns: HashMap::new(),
        conn_order: Vec::new(),
        pending: HashMap::new(),
        next_token: 1,
        accepted: 0,
        closed: 0,
        requests: 0,
        failures: 0,
        conn_shed: 0,
        conn_slow_closed: 0,
        conn_idle_reaped: 0,
        conn_refused: 0,
        conn_written_off: 0,
    };
    let mut last_tick = Instant::now();
    loop {
        // Everything already queued, then everything already finished.
        while let Ok(event) = events.try_recv() {
            d.handle_event(event);
        }
        while let Some(response) = d.service.try_recv() {
            d.deliver(response);
        }
        // Writer maintenance every pass (overflow drains, slow-consumer
        // closes, drained graceful closes) — cheap when nothing spilled.
        d.flush_writers();
        if last_tick.elapsed() >= Duration::from_millis(25) {
            d.service.tick();
            d.reap_idle();
            last_tick = Instant::now();
        }
        if shutdown.load(Ordering::SeqCst) {
            eprintln!("gmc-serve: shutdown signal received; draining");
            // Requests that already crossed the socket get answered;
            // readers stop pulling new ones.
            while let Ok(event) = events.try_recv() {
                d.handle_event(event);
            }
            break;
        }
        // Idle daemons sleep the full poll interval; with responses in
        // flight (or spilled lines waiting on a writer) the dispatcher
        // wakes fast so pipelined clients never wait on the tick.
        let wait = if d.pending.is_empty() && !d.has_backlog() {
            POLL_INTERVAL
        } else {
            Duration::from_micros(500)
        };
        match events.recv_timeout(wait) {
            Ok(event) => d.handle_event(event),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    // Graceful drain: answer everything in flight to its connection
    // (recv ticks internally, so deadlines still bound a wedged shard).
    while let Some(response) = d.service.recv() {
        d.deliver(response);
    }
    // Flush spilled lines before the graceful closes; a peer that still
    // won't read is slow-closed by the grace policy, so this terminates.
    while d.has_backlog() {
        d.flush_writers();
        std::thread::sleep(Duration::from_millis(1));
    }
    let open: Vec<u64> = d.conns.keys().copied().collect();
    for conn in open {
        d.close_conn(conn, CloseMode::Graceful);
    }
    match accept_handle.join() {
        Ok(Ok(())) => {}
        Ok(Err(e)) => {
            if let Some(path) = &cleanup {
                let _ = std::fs::remove_file(path);
            }
            return Err(e);
        }
        Err(_) => {}
    }
    if let Some(path) = &cleanup {
        let _ = std::fs::remove_file(path);
    }
    let report = TransportReport {
        accepted: d.accepted,
        requests: d.requests,
        failures: d.failures,
        snapshot: d.transport_snapshot(),
    };
    Ok((d.service, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;

    #[test]
    fn listen_addresses_parse_both_families() {
        assert_eq!(
            ListenAddr::parse("unix:/tmp/gmc.sock"),
            ListenAddr::Unix(PathBuf::from("/tmp/gmc.sock"))
        );
        assert_eq!(
            ListenAddr::parse("tcp:127.0.0.1:7070"),
            ListenAddr::Tcp("127.0.0.1:7070".into())
        );
        // A bare socket address is TCP; anything else is a path.
        assert_eq!(
            ListenAddr::parse("127.0.0.1:0"),
            ListenAddr::Tcp("127.0.0.1:0".into())
        );
        assert_eq!(
            ListenAddr::parse("/run/gmc.sock"),
            ListenAddr::Unix(PathBuf::from("/run/gmc.sock"))
        );
        assert_eq!(
            ListenAddr::parse("unix:/a b/c.sock").to_string(),
            "unix:/a b/c.sock"
        );
    }

    #[test]
    fn transport_snapshot_renders_prometheus_gauges() {
        let snapshot = TransportSnapshot {
            open: 2,
            accepted: 3,
            closed: 1,
            connections: vec![(2, 4), (3, 0)],
            conn_shed: 7,
            conn_slow_closed: 2,
            conn_idle_reaped: 5,
            conn_refused: 1,
            conn_written_off: 6,
        };
        let mut out = String::new();
        snapshot.write_prometheus(&mut out);
        assert!(out.contains("# TYPE gmc_connections gauge"));
        assert!(out.contains("gmc_connections 2\n"));
        assert!(out.contains("# TYPE gmc_connections_accepted_total counter"));
        assert!(out.contains("gmc_connections_accepted_total 3\n"));
        assert!(out.contains("gmc_connections_closed_total 1\n"));
        assert!(out.contains("# TYPE gmc_conn_shed_total counter"));
        assert!(out.contains("gmc_conn_shed_total 7\n"));
        assert!(out.contains("gmc_conn_slow_closed_total 2\n"));
        assert!(out.contains("gmc_conn_idle_reaped_total 5\n"));
        assert!(out.contains("gmc_conn_refused_total 1\n"));
        assert!(out.contains("gmc_conn_written_off_total 6\n"));
        assert!(out.contains("gmc_conn_in_flight{conn=\"2\"} 4\n"));
        assert!(out.contains("gmc_conn_in_flight{conn=\"3\"} 0\n"));
        // One TYPE line covers every per-connection gauge.
        assert_eq!(out.matches("# TYPE gmc_conn_in_flight").count(), 1);
    }

    const SRC: &str = "
        Matrix A <General, Singular>;
        Matrix L <LowerTri, NonSingular>;
        X := A * L^-1;
    ";

    fn fast_config(shards: usize) -> ServeConfig {
        ServeConfig {
            shards,
            options: gmc_core::CompileOptions {
                training_instances: 60,
                ..gmc_core::CompileOptions::default()
            },
            ..ServeConfig::default()
        }
    }

    fn request_line(id: u64) -> String {
        format!(
            "{{\"id\":{id},\"emit\":\"cpp\",\"source\":\"{}\"}}",
            SRC.replace('\n', "\\n")
        )
    }

    /// Two clients pipeline requests over one Unix socket daemon:
    /// every id is answered exactly once on the submitting connection
    /// (both clients reuse the same ids — the id namespace is
    /// per-connection), ops interleave with compiles, and the report
    /// sees both connections.
    #[test]
    fn socket_round_trip_pipelines_and_remaps_ids() {
        let dir = std::env::temp_dir().join("gmc_transport_roundtrip_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let addr = ListenAddr::Unix(dir.join("gmc.sock"));
        let listener = SocketListener::bind(&addr).unwrap();
        let service = CompileService::start(fast_config(2)).unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let serve_shutdown = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            serve(
                listener,
                service,
                TransportOptions::default(),
                serve_shutdown,
            )
        });

        let run_client = |ids: &[u64], with_health: bool| {
            let mut stream = SocketStream::connect(&addr).unwrap();
            for id in ids {
                stream.write_all(request_line(*id).as_bytes()).unwrap();
                stream.write_all(b"\n").unwrap();
            }
            if with_health {
                stream
                    .write_all(b"{\"op\":\"health\",\"id\":9000}\n")
                    .unwrap();
            }
            stream.flush().unwrap();
            stream.shutdown_write().unwrap();
            let mut lines = Vec::new();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            while reader.read_line(&mut line).unwrap() > 0 {
                lines.push(std::mem::take(&mut line).trim_end().to_string());
            }
            lines
        };

        let ids_a: Vec<u64> = vec![100, 1, 7];
        let ids_b: Vec<u64> = vec![7, 100];
        let (lines_a, lines_b) = std::thread::scope(|scope| {
            let a = scope.spawn(|| run_client(&ids_a, true));
            let b = scope.spawn(|| run_client(&ids_b, false));
            (a.join().unwrap(), b.join().unwrap())
        });

        // Exactly one response per submitted id, on the right
        // connection, every compile ok.
        let collect_ids = |lines: &[String]| -> Vec<u64> {
            lines
                .iter()
                .filter(|l| !l.contains("\"op\":\"health\""))
                .map(|l| {
                    assert!(l.contains("\"ok\":true"), "unexpected failure: {l}");
                    let rest = &l[l.find("\"id\":").unwrap() + 5..];
                    rest[..rest.find([',', '}']).unwrap()].parse().unwrap()
                })
                .collect()
        };
        let mut got_a = collect_ids(&lines_a);
        got_a.sort_unstable();
        assert_eq!(got_a, vec![1, 7, 100]);
        let mut got_b = collect_ids(&lines_b);
        got_b.sort_unstable();
        assert_eq!(got_b, vec![7, 100]);

        // Client A's health response carries the transport object.
        let health = lines_a
            .iter()
            .find(|l| l.contains("\"op\":\"health\""))
            .expect("health answered");
        assert!(health.contains("\"id\":9000"));
        assert!(health.contains("\"transport\":{\"open\":"));
        assert!(health.contains("\"accepted\":"));

        // The runtime header rides the first .cpp response of EACH
        // connection (generated .cpp files merely *include* it, so
        // match the attached-file name, not the include line).
        for lines in [&lines_a, &lines_b] {
            let headers = lines
                .iter()
                .filter(|l| l.contains("{\"name\":\"gmc_runtime.hpp\""))
                .count();
            assert_eq!(headers, 1, "one header per connection");
        }

        shutdown.store(true, Ordering::SeqCst);
        let (service, report) = handle.join().unwrap().unwrap();
        assert_eq!(report.accepted, 2);
        assert_eq!(report.requests, 6, "5 compiles + 1 health");
        assert_eq!(report.failures, 0);
        assert_eq!(report.snapshot.open, 0, "both clients drained and closed");
        assert_eq!(report.snapshot.closed, 2);
        let stats = service.shutdown();
        assert_eq!(stats.requests(), 5);
        assert!(!addr.to_string().is_empty());
        assert!(
            !dir.join("gmc.sock").exists(),
            "socket file cleaned up after serve"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    type DaemonHandle = JoinHandle<std::io::Result<(CompileService, TransportReport)>>;

    fn start_daemon(
        dir: &std::path::Path,
        config: ServeConfig,
        options: TransportOptions,
    ) -> (ListenAddr, Arc<AtomicBool>, DaemonHandle) {
        let addr = ListenAddr::Unix(dir.join("gmc.sock"));
        let listener = SocketListener::bind(&addr).unwrap();
        let service = CompileService::start(config).unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let serve_shutdown = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || serve(listener, service, options, serve_shutdown));
        (addr, shutdown, handle)
    }

    fn read_all_lines(stream: SocketStream) -> Vec<String> {
        let mut lines = Vec::new();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap_or(0) > 0 {
            lines.push(std::mem::take(&mut line).trim_end().to_string());
        }
        lines
    }

    /// Exactly at the cap requests are admitted; one past the cap is
    /// shed in band with retryable `overloaded`; once responses drain
    /// the window, the connection is under the cap again and new
    /// requests are served.
    #[test]
    fn in_flight_cap_sheds_at_cap_and_frees_as_responses_drain() {
        let dir = std::env::temp_dir().join("gmc_transport_cap_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let faults = FaultPlan::parse("delay:100").unwrap();
        let mut config = fast_config(1);
        config.faults = faults.clone();
        let options = TransportOptions {
            conn_in_flight_cap: 2,
            faults,
            ..TransportOptions::default()
        };
        let (addr, shutdown, handle) = start_daemon(&dir, config, options);

        let mut stream = SocketStream::connect(&addr).unwrap();
        // Pipeline cap + 1 requests while the shard sleeps in the
        // injected delay: ids 1 and 2 occupy the window, id 3 is shed.
        for id in [1, 2, 3] {
            stream.write_all(request_line(id).as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
        }
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut lines = Vec::new();
        let mut line = String::new();
        for _ in 0..3 {
            line.clear();
            assert!(reader.read_line(&mut line).unwrap() > 0);
            lines.push(line.trim_end().to_string());
        }
        let shed = lines
            .iter()
            .find(|l| l.contains("\"id\":3"))
            .expect("shed response for id 3");
        assert!(shed.contains("\"ok\":false"), "shed in band: {shed}");
        assert!(
            shed.contains("\"kind\":\"overloaded\""),
            "retryable: {shed}"
        );
        assert!(shed.contains("connection in-flight cap reached"));
        for id in [1, 2] {
            let ok = lines
                .iter()
                .find(|l| l.contains(&format!("\"id\":{id}")))
                .expect("admitted response");
            assert!(ok.contains("\"ok\":true"), "under the cap: {ok}");
        }
        // Window drained: the next request is admitted again.
        stream.write_all(request_line(4).as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        stream.shutdown_write().unwrap();
        line.clear();
        assert!(reader.read_line(&mut line).unwrap() > 0);
        assert!(line.contains("\"id\":4") && line.contains("\"ok\":true"));

        shutdown.store(true, Ordering::SeqCst);
        let (service, report) = handle.join().unwrap().unwrap();
        assert_eq!(report.snapshot.conn_shed, 1);
        assert_eq!(report.failures, 1);
        assert_eq!(report.snapshot.conn_written_off, 0);
        let _ = service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Over `max_conns`, a connection is accepted, refused with one
    /// typed in-band `overloaded` line, and closed — and once the
    /// population drops, new connections are served again.
    #[test]
    fn max_conns_refuses_with_a_typed_line_then_recovers() {
        let dir = std::env::temp_dir().join("gmc_transport_maxconns_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let options = TransportOptions {
            max_conns: 1,
            ..TransportOptions::default()
        };
        let (addr, shutdown, handle) = start_daemon(&dir, fast_config(1), options);

        // First client occupies the only slot.
        let mut first = SocketStream::connect(&addr).unwrap();
        first.write_all(request_line(1).as_bytes()).unwrap();
        first.write_all(b"\n").unwrap();
        first.flush().unwrap();
        let mut first_reader = BufReader::new(first.try_clone().unwrap());
        let mut line = String::new();
        assert!(first_reader.read_line(&mut line).unwrap() > 0);
        assert!(line.contains("\"ok\":true"));

        // Second client is refused with exactly one typed line, then EOF.
        let second = SocketStream::connect(&addr).unwrap();
        let refused = read_all_lines(second);
        assert_eq!(
            refused,
            vec!["{\"id\":0,\"ok\":false,\"kind\":\"overloaded\",\
                 \"error\":\"connection refused: daemon at max-conns (1); retry later\"}"
                .to_string()]
        );

        // Slot freed: a third client is served.
        first.shutdown_write().unwrap();
        line.clear();
        assert_eq!(first_reader.read_line(&mut line).unwrap(), 0, "drained");
        let mut third = SocketStream::connect(&addr).unwrap();
        third.write_all(request_line(1).as_bytes()).unwrap();
        third.write_all(b"\n").unwrap();
        third.flush().unwrap();
        third.shutdown_write().unwrap();
        let lines = read_all_lines(third);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"ok\":true"));

        shutdown.store(true, Ordering::SeqCst);
        let (service, report) = handle.join().unwrap().unwrap();
        assert_eq!(report.snapshot.conn_refused, 1);
        assert_eq!(report.accepted, 3, "refused connections count as accepted");
        assert_eq!(report.snapshot.closed, 3);
        let _ = service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A client that pipelines forever and never reads is slow-closed
    /// once its overflow outgrows one queue's worth, even though it
    /// half-closed with the write queue full; its in-flight work is
    /// written off through the exactly-once tables, daemon memory stays
    /// bounded, and the daemon keeps serving polite clients.
    #[test]
    fn never_reading_pipeliner_is_slow_closed_and_written_off() {
        let dir = std::env::temp_dir().join("gmc_transport_slowclose_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Responses finish every ~40 ms (injected delay, one shard);
        // the connection's writer stalls 300 ms per line, so the
        // bounded queue (2) fills and the overflow trips the
        // one-queue's-worth budget on the 6th response — with 4
        // requests still in flight behind it.
        let faults = FaultPlan::parse("delay:40,conn_stall:1:300").unwrap();
        let mut config = fast_config(1);
        config.faults = faults.clone();
        let options = TransportOptions {
            writer_queue: 2,
            writer_grace: Duration::from_millis(10_000),
            faults,
            ..TransportOptions::default()
        };
        let (addr, shutdown, handle) = start_daemon(&dir, config, options);

        let mut greedy = SocketStream::connect(&addr).unwrap();
        for id in 1..=10 {
            greedy.write_all(request_line(id).as_bytes()).unwrap();
            greedy.write_all(b"\n").unwrap();
        }
        greedy.flush().unwrap();
        // Half-close with the write queue about to fill: the draining
        // connection must still be torn down by the slow-consumer
        // policy, not leaked.
        greedy.shutdown_write().unwrap();
        let lines = read_all_lines(greedy);
        assert!(
            lines.len() < 10,
            "slow-closed before all responses: {} lines",
            lines.len()
        );

        // The daemon is healthy: a polite client still gets served.
        let mut polite = SocketStream::connect(&addr).unwrap();
        polite.write_all(request_line(1).as_bytes()).unwrap();
        polite.write_all(b"\n").unwrap();
        polite.flush().unwrap();
        polite.shutdown_write().unwrap();
        let polite_lines = read_all_lines(polite);
        assert_eq!(polite_lines.len(), 1);
        assert!(polite_lines[0].contains("\"ok\":true"));

        shutdown.store(true, Ordering::SeqCst);
        let (service, report) = handle.join().unwrap().unwrap();
        assert_eq!(report.snapshot.conn_slow_closed, 1);
        assert_eq!(
            report.snapshot.conn_written_off, 4,
            "responses 7-10 were in flight when the overflow tripped"
        );
        assert_eq!(report.snapshot.conn_shed, 0);
        let stats = service.shutdown();
        // Written-off work still reaches its shard exactly once (late
        // replies are dropped, not double-served).
        assert_eq!(stats.requests(), 11);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The grace window alone (without the overflow budget) slow-closes
    /// a connection whose write queue stays full.
    #[test]
    fn write_queue_full_past_grace_is_slow_closed() {
        let dir = std::env::temp_dir().join("gmc_transport_grace_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let faults = FaultPlan::parse("delay:40,conn_stall:1:300").unwrap();
        let mut config = fast_config(1);
        config.faults = faults.clone();
        let options = TransportOptions {
            writer_queue: 3,
            writer_grace: Duration::from_millis(100),
            faults,
            ..TransportOptions::default()
        };
        let (addr, shutdown, handle) = start_daemon(&dir, config, options);
        let mut greedy = SocketStream::connect(&addr).unwrap();
        for id in 1..=6 {
            greedy.write_all(request_line(id).as_bytes()).unwrap();
            greedy.write_all(b"\n").unwrap();
        }
        greedy.flush().unwrap();
        greedy.shutdown_write().unwrap();
        let lines = read_all_lines(greedy);
        assert!(lines.len() < 6, "grace expired: {} lines", lines.len());
        shutdown.store(true, Ordering::SeqCst);
        let (service, report) = handle.join().unwrap().unwrap();
        assert_eq!(report.snapshot.conn_slow_closed, 1);
        let _ = service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Idle connections are reaped after the timeout; in-flight work
    /// exempts a connection even when the compile outlasts the idle
    /// window (a request racing the reaper wins — events are drained
    /// before the reap check runs).
    #[test]
    fn idle_connections_are_reaped_but_in_flight_work_is_exempt() {
        let dir = std::env::temp_dir().join("gmc_transport_idle_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let faults = FaultPlan::parse("delay:200").unwrap();
        let mut config = fast_config(1);
        config.faults = faults.clone();
        let options = TransportOptions {
            idle_timeout: Some(Duration::from_millis(80)),
            faults,
            ..TransportOptions::default()
        };
        let (addr, shutdown, handle) = start_daemon(&dir, config, options);

        let (silent_lines, busy_lines) = std::thread::scope(|scope| {
            let silent = scope.spawn(|| {
                // Never sends anything: reaped at the idle timeout.
                let stream = SocketStream::connect(&addr).unwrap();
                read_all_lines(stream)
            });
            let busy = scope.spawn(|| {
                // One request whose compile (injected 200 ms delay)
                // outlasts the 80 ms idle window: in-flight work
                // exempts the connection, so the response arrives;
                // only then does idleness reap it.
                let mut stream = SocketStream::connect(&addr).unwrap();
                stream.write_all(request_line(1).as_bytes()).unwrap();
                stream.write_all(b"\n").unwrap();
                stream.flush().unwrap();
                read_all_lines(stream)
            });
            (silent.join().unwrap(), busy.join().unwrap())
        });
        assert!(silent_lines.is_empty(), "reaped without a response");
        assert_eq!(busy_lines.len(), 1);
        assert!(busy_lines[0].contains("\"ok\":true"));

        shutdown.store(true, Ordering::SeqCst);
        let (service, report) = handle.join().unwrap().unwrap();
        assert_eq!(report.snapshot.conn_idle_reaped, 2);
        assert_eq!(report.snapshot.conn_written_off, 0);
        let _ = service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// TCP binds to an ephemeral port and resolves the real address.
    #[test]
    fn tcp_listener_resolves_ephemeral_port() {
        let listener = SocketListener::bind(&ListenAddr::parse("127.0.0.1:0")).unwrap();
        let local = listener.local_addr().clone();
        match &local {
            ListenAddr::Tcp(addr) => assert!(!addr.ends_with(":0"), "real port resolved: {addr}"),
            ListenAddr::Unix(_) => panic!("bound TCP, got unix"),
        }
        let service = CompileService::start(fast_config(1)).unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let serve_shutdown = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            serve(
                listener,
                service,
                TransportOptions::default(),
                serve_shutdown,
            )
        });
        let mut stream = SocketStream::connect(&local).unwrap();
        stream.write_all(request_line(1).as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        stream.shutdown_write().unwrap();
        let mut response = String::new();
        BufReader::new(stream).read_line(&mut response).unwrap();
        assert!(response.contains("\"id\":1"));
        assert!(response.contains("\"ok\":true"));
        shutdown.store(true, Ordering::SeqCst);
        let (service, report) = handle.join().unwrap().unwrap();
        assert_eq!(report.accepted, 1);
        let _ = service.shutdown();
    }
}
