//! The serving layer's robustness contract, exercised through the
//! deterministic fault-injection harness (`gmc_serve::fault`):
//!
//! * a panicking shard restarts **warm** (rewarmed from the latest
//!   snapshot, so the post-restart repeat request is a cache hit);
//! * the circuit breaker takes a repeatedly-dying shard out of rotation
//!   and routing falls over to its neighbor;
//! * deadlines are enforced at dequeue and in the submitter, so a
//!   wedged shard cannot stall the stream;
//! * admission control sheds overload with typed `overloaded` errors;
//! * torn snapshot writes are quarantined on the next start;
//! * and — the invariant everything above must preserve — **every
//!   submitted request receives exactly one response**, with
//!   post-chaos counters that add up (chaos proptest at the bottom).

use gmc_core::CompileOptions;
use gmc_serve::fault::FaultPlan;
use gmc_serve::{
    route, CompileRequest, CompileResponse, CompileService, Emit, FailureKind, RestartPolicy,
    ServeConfig, ShardState,
};
use proptest::prelude::*;
use std::time::Duration;

const SRC_A: &str = "
    Matrix A <General, Singular>;
    Matrix L <LowerTri, NonSingular>;
    Matrix B <General, Singular>;
    X := A * L^-1 * B;
";
const SRC_B: &str = "
    Matrix H <General, Singular>;
    Matrix P <Symmetric, SPD>;
    Y := H * P^-1;
";
const SRC_C: &str = "
    Matrix A <General, Singular>;
    Matrix B <General, Singular>;
    Matrix C <General, Singular>;
    Matrix D <General, Singular>;
    Z := A * B * C * D;
";
const SRC_BAD: &str = "Matrix A <General, Singular>; X := B;";

fn fast_options() -> CompileOptions {
    CompileOptions {
        training_instances: 60,
        ..CompileOptions::default()
    }
}

/// Fast supervision for tests: negligible backoff, tight breaker.
fn fast_restart(max_failures: u32) -> RestartPolicy {
    RestartPolicy {
        backoff: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        max_failures,
        window: Duration::from_secs(30),
    }
}

fn config(shards: usize, faults: FaultPlan) -> ServeConfig {
    ServeConfig {
        shards,
        options: fast_options(),
        faults,
        restart: fast_restart(5),
        ..ServeConfig::default()
    }
}

fn request(id: u64, source: &str) -> CompileRequest {
    CompileRequest {
        id,
        name: None,
        source: source.to_string(),
        emit: Emit::Both,
        deadline: None,
    }
}

fn shard_of(source: &str, shards: usize) -> usize {
    let program = gmc_ir::grammar::parse_program(source).unwrap();
    route(program.shape(), shards)
}

fn kind_of(response: &CompileResponse) -> Option<FailureKind> {
    response.result.as_ref().err().map(|f| f.kind)
}

#[test]
fn panicked_shard_restarts_warm_and_serves_the_repeat_from_cache() {
    let faults = FaultPlan::parse("panic:0:2").unwrap();
    let mut service = CompileService::start(config(1, faults)).unwrap();

    // Attempt 1: cold compile, then publish the snapshot restarts
    // rewarm from.
    service.submit(request(1, SRC_A));
    let first = service.drain().remove(0);
    let first_artifacts = first.result.expect("cold compile succeeds");
    let _ = service.snapshot();

    // Attempt 2: the injected panic kills the request but not the shard.
    service.submit(request(2, SRC_A));
    let killed = service.drain().remove(0);
    assert_eq!(kind_of(&killed), Some(FailureKind::ShardPanic));
    assert!(
        killed
            .result
            .unwrap_err()
            .message
            .contains("injected fault"),
        "panic message surfaces in the typed failure"
    );

    // Attempt 3: the restarted shard serves the repeat warm — the
    // snapshot rewarm made the restart invisible apart from the one
    // failed request.
    service.submit(request(3, SRC_A));
    let retried = service.drain().remove(0);
    assert!(retried.cache_hit, "post-restart repeat is a cache hit");
    assert_eq!(
        retried.result.expect("retry succeeds"),
        first_artifacts,
        "byte-identical artifacts across the restart"
    );

    let health = &service.health()[0];
    assert_eq!(health.state, ShardState::Up);
    assert_eq!((health.panics, health.restarts), (1, 1));

    let stats = service.shutdown();
    assert_eq!((stats.panics(), stats.restarts()), (1, 1));
    assert!(stats.restored() >= 1, "restart rewarmed from the snapshot");
}

#[test]
fn circuit_breaker_opens_and_routing_falls_over_to_the_neighbor() {
    let shards = 2;
    let victim = shard_of(SRC_A, shards);
    let spec = format!("panic:{victim}:1,panic:{victim}:2");
    let faults = FaultPlan::parse(&spec).unwrap();
    let mut cfg = config(shards, faults);
    cfg.restart = fast_restart(2); // breaker opens on the second failure
    let mut service = CompileService::start(cfg).unwrap();

    for id in 1..=2u64 {
        service.submit(request(id, SRC_A));
        let r = service.drain().remove(0);
        assert_eq!(kind_of(&r), Some(FailureKind::ShardPanic), "id {id}");
        assert_eq!(r.shard, Some(victim));
    }
    assert_eq!(service.health()[victim].state, ShardState::Down);

    // Traffic for the dead shard's shapes falls over and still compiles.
    service.submit(request(3, SRC_A));
    let r = service.drain().remove(0);
    assert_eq!(r.shard, Some(1 - victim), "fell over to the neighbor");
    assert!(r.result.is_ok(), "degraded, not dropped");

    let stats = service.shutdown();
    assert_eq!(stats.panics(), 2);
    assert_eq!(stats.restarts(), 1, "first panic restarted, second tripped");
}

#[test]
fn deadlines_expire_in_submitter_and_at_dequeue() {
    // Every compile sleeps 60 ms; both requests carry 15 ms deadlines.
    // The first expires in the submitter's receive path (the shard is
    // wedged inside the delay), the second at dequeue or in the
    // submitter, depending on timing — both must come back exactly once
    // as deadline_exceeded.
    let faults = FaultPlan::parse("delay:60").unwrap();
    let mut service = CompileService::start(config(1, faults)).unwrap();
    for id in 1..=2u64 {
        let mut req = request(id, SRC_A);
        req.deadline = Some(Duration::from_millis(15));
        service.submit(req);
    }
    let mut responses = service.drain();
    responses.sort_by_key(|r| r.id);
    assert_eq!(responses.len(), 2, "exactly one response per request");
    for r in &responses {
        assert_eq!(
            kind_of(r),
            Some(FailureKind::DeadlineExceeded),
            "id {}",
            r.id
        );
        assert!(kind_of(r).unwrap().retryable());
    }
    assert!(
        service.health()[0].deadline_exceeded >= 2,
        "both expiries counted"
    );
    let _ = service.shutdown();
}

#[test]
fn overload_sheds_beyond_the_queue_cap_with_typed_errors() {
    // One slow shard (30 ms per compile), queue depth 2: of five
    // back-to-back submissions, two are admitted and three shed.
    let faults = FaultPlan::parse("delay:30").unwrap();
    let mut cfg = config(1, faults);
    cfg.queue_cap = 2;
    let mut service = CompileService::start(cfg).unwrap();
    for id in 1..=5u64 {
        service.submit(request(id, SRC_A));
    }
    let responses = service.drain();
    assert_eq!(responses.len(), 5);
    let shed: Vec<u64> = responses
        .iter()
        .filter(|r| kind_of(r) == Some(FailureKind::Overloaded))
        .map(|r| r.id)
        .collect();
    let served = responses.iter().filter(|r| r.result.is_ok()).count();
    assert_eq!(shed, vec![3, 4, 5], "admission is first-come");
    assert_eq!(served, 2);
    assert_eq!(service.health()[0].shed, 3);
    let _ = service.shutdown();
}

#[test]
fn torn_snapshot_writes_are_quarantined_on_the_next_start() {
    let dir = std::env::temp_dir().join("gmc_serve_torn_snapshot_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snapshot.txt");

    // A service with the torn-write fault armed persists a truncated,
    // non-renamed file — the simulated crash mid-save.
    let faults = FaultPlan::parse("snapshot_torn").unwrap();
    let mut cfg = config(1, faults);
    cfg.snapshot_path = Some(path.clone());
    let mut service = CompileService::start(cfg.clone()).unwrap();
    service.submit(request(1, SRC_A));
    assert!(service.drain().remove(0).result.is_ok());
    service.save_snapshot(&path).unwrap();
    let _ = service.shutdown();
    assert!(path.exists(), "torn file landed on the final path");

    // The next start must quarantine it and serve cold, not die.
    cfg.faults = FaultPlan::new();
    let mut reborn = CompileService::start(cfg).unwrap();
    service_compiles_cold(&mut reborn);
    let stats = reborn.shutdown();
    assert_eq!(stats.restored(), 0);
    assert!(!path.exists(), "torn snapshot moved aside");
    assert!(dir.join("snapshot.txt.bad").exists(), "kept for inspection");
}

#[test]
fn torn_fragment_sections_are_quarantined_on_the_next_start() {
    let dir = std::env::temp_dir().join("gmc_serve_torn_frag_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snapshot.txt");

    // The fragment section is the snapshot's tail, so a write that dies
    // mid-way through it must corrupt the *whole* file — the count check
    // may never let a partial fragment store restore silently.
    let faults = FaultPlan::parse("frag_torn").unwrap();
    let mut cfg = config(1, faults);
    cfg.snapshot_path = Some(path.clone());
    let mut service = CompileService::start(cfg.clone()).unwrap();
    service.submit(request(1, SRC_A));
    assert!(service.drain().remove(0).result.is_ok());
    service.save_snapshot(&path).unwrap();
    let _ = service.shutdown();
    assert!(path.exists(), "torn file landed on the final path");

    cfg.faults = FaultPlan::new();
    let mut reborn = CompileService::start(cfg).unwrap();
    service_compiles_cold(&mut reborn);
    let stats = reborn.shutdown();
    assert_eq!(stats.restored(), 0, "no chains from the torn file");
    assert_eq!(stats.frag_restored(), 0, "no partial fragment store");
    assert!(!path.exists(), "torn snapshot moved aside");
    assert!(dir.join("snapshot.txt.bad").exists(), "kept for inspection");
}

#[test]
fn repeated_corruption_quarantines_without_clobbering_evidence() {
    let dir = std::env::temp_dir().join("gmc_serve_quarantine_suffix_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snapshot.txt");
    let mut cfg = config(1, FaultPlan::new());
    cfg.snapshot_path = Some(path.clone());

    // First corruption moves aside to `<path>.bad`.
    std::fs::write(&path, "first corruption").unwrap();
    let mut service = CompileService::start(cfg.clone()).unwrap();
    service_compiles_cold(&mut service);
    let _ = service.shutdown();
    assert!(dir.join("snapshot.txt.bad").exists());

    // A second corrupt snapshot must not overwrite that evidence:
    // the quarantine name gains a numeric suffix instead.
    std::fs::remove_file(&path).ok();
    std::fs::write(&path, "second corruption").unwrap();
    let mut service = CompileService::start(cfg.clone()).unwrap();
    service_compiles_cold(&mut service);
    let _ = service.shutdown();

    // And a third, for the suffix counter itself.
    std::fs::remove_file(&path).ok();
    std::fs::write(&path, "third corruption").unwrap();
    let mut service = CompileService::start(cfg).unwrap();
    service_compiles_cold(&mut service);
    let _ = service.shutdown();

    let read = |p: std::path::PathBuf| std::fs::read_to_string(p).unwrap();
    assert_eq!(read(dir.join("snapshot.txt.bad")), "first corruption");
    assert_eq!(read(dir.join("snapshot.txt.bad.1")), "second corruption");
    assert_eq!(read(dir.join("snapshot.txt.bad.2")), "third corruption");
    let _ = std::fs::remove_dir_all(&dir);
}

fn service_compiles_cold(service: &mut CompileService) {
    service.submit(request(9, SRC_A));
    let r = service.drain().remove(0);
    assert!(r.result.is_ok());
    assert!(!r.cache_hit, "cold start after quarantine");
}

/// The acceptance path end-to-end: a shard is killed mid-stream, the
/// stream still answers every request exactly once, the drained
/// shutdown persists a snapshot, and a new service restores it
/// bit-identically — every repeat is a cache hit with byte-identical
/// C++ and Rust artifacts.
#[test]
fn killed_shard_mid_stream_then_drained_snapshot_restores_bit_identical() {
    let dir = std::env::temp_dir().join("gmc_serve_chaos_acceptance_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snapshot.txt");

    let shards = 2;
    let victim = shard_of(SRC_A, shards);
    let faults = FaultPlan::parse(&format!("panic:{victim}:2")).unwrap();
    let mut cfg = config(shards, faults);
    cfg.snapshot_path = Some(path.clone());

    let mut cold = CompileService::start(cfg.clone()).unwrap();
    cold.submit(request(1, SRC_A));
    let baseline = cold.drain().remove(0).result.expect("cold compile");
    let _ = cold.snapshot(); // publish the rewarm source
    cold.submit(request(2, SRC_A)); // killed mid-stream
    cold.submit(request(3, SRC_A)); // served warm after the restart
    cold.submit(request(4, SRC_B));
    cold.submit(request(5, SRC_C));
    let mut responses = cold.drain();
    responses.sort_by_key(|r| r.id);
    assert_eq!(responses.len(), 4, "exactly one response per request");
    assert_eq!(kind_of(&responses[0]), Some(FailureKind::ShardPanic));
    assert!(responses[1].cache_hit, "restart rewarmed the victim shard");
    assert!(responses[2].result.is_ok() && responses[3].result.is_ok());
    cold.save_snapshot(&path).unwrap();
    let stats = cold.shutdown();
    assert_eq!((stats.panics(), stats.restarts()), (1, 1));

    // A fresh service (faults disarmed) restores everything warm and
    // byte-identical.
    cfg.faults = FaultPlan::new();
    let mut warm = CompileService::start(cfg).unwrap();
    for (id, src) in [(1, SRC_A), (2, SRC_B), (3, SRC_C)] {
        warm.submit(request(id, src));
    }
    let mut warmed = warm.drain();
    warmed.sort_by_key(|r| r.id);
    for r in &warmed {
        assert!(r.cache_hit, "restored chain serves id {} warm", r.id);
    }
    assert_eq!(
        warmed[0].result.as_ref().unwrap(),
        &baseline,
        "byte-identical emitted C++/Rust after kill + drain + restore"
    );
    let _ = warm.shutdown();
}

/// Multi-connection chaos over the socket transport: several
/// concurrent clients pipeline request streams (all reusing the SAME
/// ids — the id namespace is per-connection) against one faulted
/// daemon. Injected panics kill individual requests, malformed sources
/// fail to parse, an in-band op rides the middle of each stream — and
/// still every id is answered exactly once on the connection that
/// submitted it, with service counters that balance across the fleet.
#[test]
fn concurrent_socket_clients_with_faults_get_exactly_one_response_each() {
    use gmc_serve::transport::{self, ListenAddr, SocketListener, SocketStream, TransportOptions};
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const CLIENTS: usize = 3;
    const REQUESTS: usize = 12;
    let sources = [SRC_A, SRC_B, SRC_C, SRC_BAD];

    let dir = std::env::temp_dir().join("gmc_socket_chaos_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let addr = ListenAddr::Unix(dir.join("chaos.sock"));

    let faults = FaultPlan::parse("panic:0:3,panic:1:4,delay:1").unwrap();
    let service = CompileService::start(config(2, faults)).unwrap();
    let listener = SocketListener::bind(&addr).unwrap();
    let shutdown = Arc::new(AtomicBool::new(false));
    let serve_shutdown = Arc::clone(&shutdown);
    let daemon = std::thread::spawn(move || {
        transport::serve(
            listener,
            service,
            TransportOptions::default(),
            serve_shutdown,
        )
    });

    let escape = |s: &str| s.replace('\n', "\\n");
    let run_client = |offset: usize| -> Vec<String> {
        let mut stream = SocketStream::connect(&addr).unwrap();
        for id in 0..REQUESTS {
            // Interleave an in-band op mid-stream; it must be answered
            // on this connection under its own id like any request.
            if id == REQUESTS / 2 {
                stream
                    .write_all(b"{\"op\":\"stats\",\"id\":9999}\n")
                    .unwrap();
            }
            let source = sources[(offset + id) % sources.len()];
            let line = format!(
                "{{\"id\":{id},\"emit\":\"cpp\",\"source\":\"{}\"}}\n",
                escape(source)
            );
            stream.write_all(line.as_bytes()).unwrap();
        }
        stream.flush().unwrap();
        stream.shutdown_write().unwrap();
        let mut lines = Vec::new();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap() > 0 {
            lines.push(std::mem::take(&mut line).trim_end().to_string());
        }
        lines
    };

    let per_client: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| scope.spawn(move || run_client(c)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let id_of = |line: &str| -> u64 {
        let rest = &line[line.find("\"id\":").unwrap() + 5..];
        rest[..rest.find([',', '}']).unwrap()].parse().unwrap()
    };
    let (mut ok, mut shed, mut panicked, mut parse_failed) = (0u64, 0u64, 0u64, 0u64);
    for lines in &per_client {
        // Exactly one response per submitted id, on this connection —
        // ids 0..REQUESTS once each plus the op's 9999.
        let mut ids: Vec<u64> = lines.iter().map(|l| id_of(l)).collect();
        ids.sort_unstable();
        let mut expected: Vec<u64> = (0..REQUESTS as u64).collect();
        expected.push(9999);
        assert_eq!(ids, expected, "exactly one response per id per connection");
        for line in lines {
            if line.contains("\"op\":\"stats\"") {
                continue;
            }
            if line.contains("\"ok\":true") {
                ok += 1;
            } else if line.contains("\"kind\":\"overloaded\"") {
                shed += 1;
            } else if line.contains("\"kind\":\"shard_panic\"") {
                panicked += 1;
            } else if line.contains("\"kind\":\"parse\"") {
                parse_failed += 1;
            } else {
                panic!("unexpected failure class: {line}");
            }
        }
    }
    let submitted = (CLIENTS * REQUESTS) as u64;
    assert_eq!(ok + shed + panicked + parse_failed, submitted);
    assert_eq!(panicked, 2, "each injected panic kills exactly one request");
    assert!(parse_failed > 0, "the malformed source rode every stream");

    shutdown.store(true, Ordering::SeqCst);
    let (service, report) = daemon.join().unwrap().unwrap();
    assert_eq!(report.accepted, CLIENTS as u64);
    assert_eq!(
        report.requests,
        submitted + CLIENTS as u64,
        "compiles + one op per connection"
    );
    assert_eq!(report.snapshot.open, 0, "all connections drained closed");
    let stats = service.shutdown();
    assert_eq!(stats.panics(), panicked);
    let compiled = stats
        .shards
        .iter()
        .map(|s| s.cache.hits + s.cache.misses)
        .sum::<u64>();
    assert_eq!(compiled, ok, "every ok response is a hit or a miss");
    assert_eq!(
        compiled + shed + panicked + parse_failed,
        submitted,
        "hits + misses + shed + failed == submitted, fleet-wide"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Chaos: random request streams (healthy and malformed sources)
    /// against a 2-shard service with injected panics, delays, and a
    /// tight queue. Invariants: every request gets exactly one
    /// response, nothing hangs, and the post-chaos counters are
    /// consistent — `hits + misses + shed + failed == submitted`
    /// (panics fire before the session is touched, so a killed request
    /// counts as neither hit nor miss), and the e2e latency histograms
    /// record exactly one sample per shard-attributed response (parse
    /// failures never reach a shard and record nothing).
    #[test]
    fn every_request_gets_exactly_one_response_and_counters_balance(
        picks in proptest::collection::vec(0usize..4, 5..25),
        panic_nth in 1u64..6,
        delay_ms in 0u64..3,
    ) {
        let sources = [SRC_A, SRC_B, SRC_C, SRC_BAD];
        let spec = format!("panic:0:{panic_nth},panic:1:{panic_nth},delay:{delay_ms}");
        let faults = FaultPlan::parse(&spec).unwrap();
        let mut cfg = config(2, faults);
        cfg.queue_cap = 3;
        let mut service = CompileService::start(cfg).unwrap();

        for (id, &pick) in picks.iter().enumerate() {
            service.submit(request(id as u64, sources[pick]));
        }
        let mut responses = service.drain();
        prop_assert_eq!(responses.len(), picks.len(), "exactly one response each");
        responses.sort_by_key(|r| r.id);
        for (id, r) in responses.iter().enumerate() {
            prop_assert_eq!(r.id, id as u64, "no duplicates, no drops");
        }

        let ok = responses.iter().filter(|r| r.result.is_ok()).count() as u64;
        let shed = responses
            .iter()
            .filter(|r| kind_of(r) == Some(FailureKind::Overloaded))
            .count() as u64;
        let failed = responses.len() as u64 - ok - shed;
        let panicked = responses
            .iter()
            .filter(|r| kind_of(r) == Some(FailureKind::ShardPanic))
            .count() as u64;

        let health = service.health();
        let health_shed: u64 = health.iter().map(|h| h.shed).sum();
        prop_assert_eq!(health_shed, shed, "shed counter matches responses");

        // Observability: the per-shard e2e histograms record exactly one
        // sample per shard-attributed response; together with the parse
        // failures (which never reach a shard) that accounts for the
        // whole stream.
        let attributed = responses.iter().filter(|r| r.shard.is_some()).count() as u64;
        let parse_failed = responses
            .iter()
            .filter(|r| kind_of(r) == Some(FailureKind::Parse))
            .count() as u64;
        let metrics = service.metrics();
        prop_assert_eq!(
            metrics.requests(),
            attributed,
            "one e2e sample per shard-attributed response"
        );
        prop_assert_eq!(
            attributed + parse_failed,
            picks.len() as u64,
            "recorded + parse-failed == submitted"
        );

        let stats = service.shutdown();
        prop_assert_eq!(stats.panics(), panicked, "panic counter matches responses");
        prop_assert_eq!(stats.late_drops, 0, "no write-offs without deadlines");
        let compiled = stats.shards.iter().map(|s| s.cache.hits + s.cache.misses).sum::<u64>();
        prop_assert_eq!(compiled, ok, "every ok response is a hit or a miss");
        prop_assert_eq!(
            compiled + shed + failed,
            picks.len() as u64,
            "hits + misses + shed + failed == submitted"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Transport chaos: three concurrent clients pipeline identical
    /// streams (ids 1..=N, valid sources, no deadlines) against a
    /// daemon with random connection faults (one connection dropped
    /// mid-response, one stalled, one fed garbage) on top of shard
    /// panics and delays, plus a randomized per-connection in-flight
    /// cap. Invariants pinned:
    ///
    /// * every request on a *surviving* connection is answered exactly
    ///   once (the garbage-swapped line is answered in band as
    ///   `bad_request` under its positional id);
    /// * the *killed* connection sees a duplicate-free subset — never a
    ///   resend, never an id it didn't submit;
    /// * fleet counters balance: `hits + misses + conn_shed + panics`
    ///   equals the compile lines the dispatcher admitted, every
    ///   admitted token reaches a shard exactly once (written-off work
    ///   included), and late shard replies never exceed the write-off
    ///   count;
    /// * the daemon drains to zero open connections.
    #[test]
    fn transport_chaos_preserves_exactly_once_and_balanced_counters(
        drop_conn in 1u64..4,
        drop_nth in 1u64..12,
        stall_conn in 1u64..4,
        stall_tick in 0u64..3,
        panic_nth in 1u64..8,
        delay_ms in 0u64..3,
        cap_pick in 0usize..3,
    ) {
        use gmc_serve::transport::{self, ListenAddr, SocketListener, SocketStream, TransportOptions};
        use std::io::{BufRead as _, BufReader, Write as _};
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        const CLIENTS: usize = 3;
        const REQUESTS: u64 = 12;
        // The garbage target must survive: picking it off the dropped
        // connection keeps the swapped line's accounting deterministic.
        let garbage_conn = (drop_conn % CLIENTS as u64) + 1;
        let cap = [0usize, 3, 64][cap_pick];
        let sources = [SRC_A, SRC_B, SRC_C];

        let dir = std::env::temp_dir().join(format!(
            "gmc_transport_chaos_{drop_conn}_{drop_nth}_{stall_conn}_{stall_tick}_{panic_nth}_{delay_ms}_{cap}"
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let addr = ListenAddr::Unix(dir.join("chaos.sock"));

        let spec = format!(
            "conn_drop:{drop_conn}:{drop_nth},conn_stall:{stall_conn}:{},conn_garbage:{garbage_conn},\
             panic:0:{panic_nth},delay:{delay_ms}",
            stall_tick * 10
        );
        let faults = FaultPlan::parse(&spec).unwrap();
        let mut cfg = config(2, faults.clone());
        cfg.faults = faults.clone();
        let service = CompileService::start(cfg).unwrap();
        let listener = SocketListener::bind(&addr).unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let serve_shutdown = Arc::clone(&shutdown);
        let options = TransportOptions {
            conn_in_flight_cap: cap,
            faults,
            ..TransportOptions::default()
        };
        let daemon = std::thread::spawn(move || {
            transport::serve(listener, service, options, serve_shutdown)
        });

        let escape = |s: &str| s.replace('\n', "\\n");
        let run_client = |offset: usize| -> Vec<String> {
            let mut stream = SocketStream::connect(&addr).unwrap();
            for id in 1..=REQUESTS {
                let source = sources[(offset + id as usize) % sources.len()];
                let line = format!(
                    "{{\"id\":{id},\"emit\":\"cpp\",\"source\":\"{}\"}}\n",
                    escape(source)
                );
                // Writes may fail once the daemon aborts this
                // connection (conn_drop) — that's the chaos under test.
                if stream.write_all(line.as_bytes()).is_err() {
                    break;
                }
            }
            let _ = stream.flush();
            let _ = stream.shutdown_write();
            let mut lines = Vec::new();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            while reader.read_line(&mut line).unwrap_or(0) > 0 {
                lines.push(std::mem::take(&mut line).trim_end().to_string());
            }
            lines
        };

        let per_client: Vec<Vec<String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| scope.spawn(move || run_client(c)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let id_of = |line: &str| -> u64 {
            let rest = &line[line.find("\"id\":").unwrap() + 5..];
            rest[..rest.find([',', '}']).unwrap()].parse().unwrap()
        };
        let mut killed = 0usize;
        let mut bad_request_lines = 0u64;
        for lines in &per_client {
            let ids: Vec<u64> = lines.iter().map(|l| id_of(l)).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), ids.len(), "no id answered twice on one connection");
            prop_assert!(
                sorted.iter().all(|&i| (1..=REQUESTS).contains(&i)),
                "never an id the client didn't submit"
            );
            bad_request_lines +=
                lines.iter().filter(|l| l.contains("\"kind\":\"bad_request\"")).count() as u64;
            if lines.len() < REQUESTS as usize {
                killed += 1;
            } else {
                prop_assert_eq!(
                    sorted,
                    (1..=REQUESTS).collect::<Vec<u64>>(),
                    "surviving connection: exactly once per id"
                );
            }
        }
        prop_assert_eq!(killed, 1, "exactly the dropped connection lost responses");
        prop_assert!(
            bad_request_lines <= 1,
            "at most the one garbage-swapped line fails typed"
        );

        shutdown.store(true, Ordering::SeqCst);
        let (service, report) = daemon.join().unwrap().unwrap();
        prop_assert_eq!(report.snapshot.open, 0, "daemon drained to zero connections");
        prop_assert_eq!(report.accepted, CLIENTS as u64);

        // The garbage connection survives, so its swapped line is
        // always processed: admitted compile lines are everything the
        // dispatcher read minus that one line.
        let processed_lines = report.requests;
        let admitted = processed_lines - 1 - report.snapshot.conn_shed;

        let stats = service.shutdown();
        prop_assert_eq!(
            stats.requests(),
            admitted,
            "every admitted token reaches a shard exactly once (write-offs included)"
        );
        let compiled = stats.shards.iter().map(|s| s.cache.hits + s.cache.misses).sum::<u64>();
        prop_assert_eq!(
            compiled + stats.panics() + report.snapshot.conn_shed,
            processed_lines - 1,
            "hits + misses + shed + panics == submitted"
        );
        prop_assert!(
            stats.late_drops <= report.snapshot.conn_written_off,
            "late drops only for written-off work"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
