//! Property-based tests of the linear-algebra substrate: solver round
//! trips, factorization identities, and kernel/gemm agreement on random
//! sizes and contents.

use gmc_linalg::{
    cholesky, gemm, getrs, householder_qr, inverse_general, lu_factor, matmul, potrs,
    random_general, random_lower_triangular, random_nonsingular, random_spd, random_symmetric,
    relative_error, symm, trmm, trsm, Matrix, Side, Transpose, Triangle,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lu_solve_round_trip(n in 1usize..12, k in 1usize..6, seed in 0u64..10_000) {
        let mut rng = rng_for(seed);
        let a = random_nonsingular(&mut rng, n);
        let x = random_general(&mut rng, n, k);
        let b = matmul(&a, Transpose::No, &x, Transpose::No);
        let f = lu_factor(&a).unwrap();
        let mut got = b;
        getrs(&f, Transpose::No, Side::Left, &mut got);
        prop_assert!(relative_error(&got, &x) < 1e-8);
    }

    #[test]
    fn lu_transpose_solve_round_trip(n in 1usize..12, seed in 0u64..10_000) {
        let mut rng = rng_for(seed);
        let a = random_nonsingular(&mut rng, n);
        let x = random_general(&mut rng, n, 2);
        let b = matmul(&a, Transpose::Yes, &x, Transpose::No);
        let f = lu_factor(&a).unwrap();
        let mut got = b;
        getrs(&f, Transpose::Yes, Side::Left, &mut got);
        prop_assert!(relative_error(&got, &x) < 1e-8);
    }

    #[test]
    fn cholesky_round_trip(n in 1usize..12, seed in 0u64..10_000) {
        let mut rng = rng_for(seed);
        let a = random_spd(&mut rng, n);
        let x = random_general(&mut rng, n, 3);
        let b = matmul(&a, Transpose::No, &x, Transpose::No);
        let f = cholesky(&a).unwrap();
        let mut got = b;
        potrs(&f, Side::Left, &mut got);
        prop_assert!(relative_error(&got, &x) < 1e-8);
    }

    #[test]
    fn qr_reconstructs_and_q_is_orthogonal(m in 1usize..10, n in 1usize..10, seed in 0u64..10_000) {
        let mut rng = rng_for(seed);
        let a = random_general(&mut rng, m, n);
        let f = householder_qr(&a);
        let qr = matmul(f.q(), Transpose::No, f.r(), Transpose::No);
        prop_assert!(relative_error(&qr, &a) < 1e-10);
        let qtq = matmul(f.q(), Transpose::Yes, f.q(), Transpose::No);
        prop_assert!(qtq.is_identity(1e-10));
        prop_assert!(f.r().is_upper_triangular(1e-14));
    }

    #[test]
    fn inverse_is_two_sided(n in 1usize..10, seed in 0u64..10_000) {
        let mut rng = rng_for(seed);
        let a = random_nonsingular(&mut rng, n);
        let inv = inverse_general(&a).unwrap();
        prop_assert!(matmul(&a, Transpose::No, &inv, Transpose::No).is_identity(1e-8));
        prop_assert!(matmul(&inv, Transpose::No, &a, Transpose::No).is_identity(1e-8));
    }

    #[test]
    fn trsm_inverts_trmm(n in 1usize..10, k in 1usize..5, seed in 0u64..10_000, upper in any::<bool>(), ta in any::<bool>()) {
        let mut rng = rng_for(seed);
        let (a, tri) = if upper {
            (random_lower_triangular(&mut rng, n, true).transposed(), Triangle::Upper)
        } else {
            (random_lower_triangular(&mut rng, n, true), Triangle::Lower)
        };
        let t = if ta { Transpose::Yes } else { Transpose::No };
        let x = random_general(&mut rng, n, k);
        let mut b = x.clone();
        trmm(Side::Left, tri, t, 1.0, &a, &mut b);
        trsm(Side::Left, tri, t, 1.0, &a, &mut b);
        prop_assert!(relative_error(&b, &x) < 1e-8);
    }

    #[test]
    fn symm_agrees_with_gemm(n in 1usize..10, k in 1usize..6, seed in 0u64..10_000) {
        let mut rng = rng_for(seed);
        let a = random_symmetric(&mut rng, n);
        let b = random_general(&mut rng, n, k);
        let mut c = Matrix::zeros(n, k);
        symm(Side::Left, 1.0, &a, &b, Transpose::No, 0.0, &mut c);
        let want = matmul(&a, Transpose::No, &b, Transpose::No);
        prop_assert!(relative_error(&c, &want) < 1e-11);
    }

    #[test]
    fn gemm_alpha_beta_linear(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..10_000) {
        let mut rng = rng_for(seed);
        let a = random_general(&mut rng, m, k);
        let b = random_general(&mut rng, k, n);
        let c0 = random_general(&mut rng, m, n);
        // C = 2 A B + 3 C0 == 2 (A B) + 3 C0 elementwise.
        let mut c = c0.clone();
        gemm(2.0, &a, Transpose::No, &b, Transpose::No, 3.0, &mut c);
        let ab = matmul(&a, Transpose::No, &b, Transpose::No);
        for (i, j, v) in c.iter_indexed() {
            let want = 2.0 * ab.get(i, j) + 3.0 * c0.get(i, j);
            prop_assert!((v - want).abs() < 1e-10);
        }
    }

    #[test]
    fn transpose_is_involution(m in 1usize..10, n in 1usize..10, seed in 0u64..10_000) {
        let mut rng = rng_for(seed);
        let a = random_general(&mut rng, m, n);
        prop_assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn lu_right_solves(n in 1usize..10, k in 1usize..5, seed in 0u64..10_000, ta in any::<bool>()) {
        let mut rng = rng_for(seed);
        let a = random_nonsingular(&mut rng, n);
        let x = random_general(&mut rng, k, n);
        let t = if ta { Transpose::Yes } else { Transpose::No };
        let b = matmul(&x, Transpose::No, &a, t);
        let f = lu_factor(&a).unwrap();
        let mut got = b;
        getrs(&f, t, Side::Right, &mut got);
        prop_assert!(relative_error(&got, &x) < 1e-8);
    }
}

// Blocked-path properties: sizes above the dispatch thresholds so the
// packed GEMM core and the blocked triangular kernels (not the scalar
// fallbacks) are the code under test. Fewer cases — each one is a real
// O(n^3) multiply.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn blocked_gemm_agrees_with_scalar(
        m in 90usize..150,
        k in 90usize..150,
        n in 90usize..150,
        seed in 0u64..10_000,
        ta in any::<bool>(),
        tb in any::<bool>(),
    ) {
        let mut rng = rng_for(seed);
        let ta = if ta { Transpose::Yes } else { Transpose::No };
        let tb = if tb { Transpose::Yes } else { Transpose::No };
        let (ar, ac) = if ta.is_trans() { (k, m) } else { (m, k) };
        let (br, bc) = if tb.is_trans() { (n, k) } else { (k, n) };
        let a = random_general(&mut rng, ar, ac);
        let b = random_general(&mut rng, br, bc);
        let mut want = random_general(&mut rng, m, n);
        let mut got = want.clone();
        gmc_linalg::gemm_scalar(0.8, &a, ta, &b, tb, -0.3, &mut want);
        gmc_linalg::gemm_blocked(0.8, &a, ta, &b, tb, -0.3, &mut got);
        prop_assert!(relative_error(&got, &want) < 1e-12);
    }

    #[test]
    fn blocked_symm_agrees_with_gemm(
        n in 100usize..170,
        k in 100usize..170,
        seed in 0u64..10_000,
        left in any::<bool>(),
        tb in any::<bool>(),
    ) {
        let mut rng = rng_for(seed);
        let s = random_symmetric(&mut rng, n);
        let tb = if tb { Transpose::Yes } else { Transpose::No };
        if left {
            let g = match tb {
                Transpose::No => random_general(&mut rng, n, k),
                Transpose::Yes => random_general(&mut rng, k, n),
            };
            let mut c = Matrix::zeros(n, k);
            symm(Side::Left, 1.0, &s, &g, tb, 0.0, &mut c);
            let want = matmul(&s, Transpose::No, &g, tb);
            prop_assert!(relative_error(&c, &want) < 1e-12);
        } else {
            let g = match tb {
                Transpose::No => random_general(&mut rng, k, n),
                Transpose::Yes => random_general(&mut rng, n, k),
            };
            let mut c = Matrix::zeros(k, n);
            symm(Side::Right, 1.0, &s, &g, tb, 0.0, &mut c);
            let want = matmul(&g, tb, &s, Transpose::No);
            prop_assert!(relative_error(&c, &want) < 1e-12);
        }
    }

    #[test]
    fn blocked_trsm_inverts_trmm(
        n in 100usize..180,
        k in 1usize..24,
        seed in 0u64..10_000,
        upper in any::<bool>(),
        ta in any::<bool>(),
        left in any::<bool>(),
    ) {
        let mut rng = rng_for(seed);
        let tri = if upper { Triangle::Upper } else { Triangle::Lower };
        let t = if ta { Transpose::Yes } else { Transpose::No };
        let side = if left { Side::Left } else { Side::Right };
        let a = {
            let l = random_lower_triangular(&mut rng, n, true);
            if upper { l.transposed() } else { l }
        };
        let x = match side {
            Side::Left => random_general(&mut rng, n, k),
            Side::Right => random_general(&mut rng, k, n),
        };
        let mut b = x.clone();
        trmm(side, tri, t, 1.0, &a, &mut b);
        trsm(side, tri, t, 1.0, &a, &mut b);
        prop_assert!(relative_error(&b, &x) < 1e-7, "{side:?} {tri:?} {t:?}");
    }

    #[test]
    fn blocked_trmm_agrees_with_gemm_after_masking(
        n in 100usize..180,
        k in 1usize..24,
        seed in 0u64..10_000,
        upper in any::<bool>(),
        ta in any::<bool>(),
        left in any::<bool>(),
    ) {
        let mut rng = rng_for(seed);
        let tri = if upper { Triangle::Upper } else { Triangle::Lower };
        let t = if ta { Transpose::Yes } else { Transpose::No };
        let side = if left { Side::Left } else { Side::Right };
        let a = {
            let l = random_lower_triangular(&mut rng, n, false);
            if upper { l.transposed() } else { l }
        };
        let x = match side {
            Side::Left => random_general(&mut rng, n, k),
            Side::Right => random_general(&mut rng, k, n),
        };
        let mut got = x.clone();
        trmm(side, tri, t, 1.0, &a, &mut got);
        let want = match side {
            Side::Left => matmul(&a, t, &x, Transpose::No),
            Side::Right => matmul(&x, Transpose::No, &a, t),
        };
        prop_assert!(relative_error(&got, &want) < 1e-11, "{side:?} {tri:?} {t:?}");
    }
}
