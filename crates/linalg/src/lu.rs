use crate::matrix::{Matrix, Transpose, Triangle};
use crate::symm::Side;
use crate::tri::trsm;
use crate::{LinalgError, Result};

/// An LU factorization with partial pivoting: `P * A = L * U`.
///
/// `L` is unit-lower-triangular and `U` upper-triangular, packed into a
/// single matrix (LAPACK `GETRF` convention). `pivots[k]` records the row
/// swapped with row `k` at step `k`.
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: Matrix,
    pivots: Vec<usize>,
}

impl LuFactors {
    /// The packed `L \ U` matrix.
    #[must_use]
    pub fn packed(&self) -> &Matrix {
        &self.lu
    }

    /// The pivot vector.
    #[must_use]
    pub fn pivots(&self) -> &[usize] {
        &self.pivots
    }

    /// Extract `L` (unit lower-triangular) as a dense matrix.
    #[must_use]
    pub fn l(&self) -> Matrix {
        let n = self.lu.rows();
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                self.lu.get(i, j)
            } else {
                0.0
            }
        })
    }

    /// Extract `U` (upper-triangular) as a dense matrix.
    #[must_use]
    pub fn u(&self) -> Matrix {
        let n = self.lu.rows();
        Matrix::from_fn(n, n, |i, j| if i <= j { self.lu.get(i, j) } else { 0.0 })
    }

    /// Apply the row permutation `P` to a fresh copy of `b`.
    #[must_use]
    pub fn permute(&self, b: &Matrix) -> Matrix {
        let mut x = b.clone();
        for (k, &p) in self.pivots.iter().enumerate() {
            if p != k {
                for j in 0..x.cols() {
                    let t = x.get(k, j);
                    x.set(k, j, x.get(p, j));
                    x.set(p, j, t);
                }
            }
        }
        x
    }

    /// Apply the *inverse* row permutation `P^T` to a fresh copy of `b`.
    #[must_use]
    pub fn permute_inv(&self, b: &Matrix) -> Matrix {
        let mut x = b.clone();
        for (k, &p) in self.pivots.iter().enumerate().rev() {
            if p != k {
                for j in 0..x.cols() {
                    let t = x.get(k, j);
                    x.set(k, j, x.get(p, j));
                    x.set(p, j, t);
                }
            }
        }
        x
    }
}

/// Factor a square matrix as `P * A = L * U` with partial pivoting
/// (LAPACK `GETRF`).
///
/// # Errors
///
/// Returns [`LinalgError::SingularPivot`] if a pivot column is exactly zero
/// and [`LinalgError::DimensionMismatch`] if `A` is not square.
pub fn lu_factor(a: &Matrix) -> Result<LuFactors> {
    if !a.is_square() {
        return Err(LinalgError::DimensionMismatch(format!(
            "lu_factor requires a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let n = a.rows();
    let mut lu = a.clone();
    let mut pivots = vec![0usize; n];
    for k in 0..n {
        // Pivot search in column k.
        let mut p = k;
        let mut best = lu.get(k, k).abs();
        for i in k + 1..n {
            let v = lu.get(i, k).abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        pivots[k] = p;
        if best == 0.0 {
            return Err(LinalgError::SingularPivot(k));
        }
        if p != k {
            for j in 0..n {
                let t = lu.get(k, j);
                lu.set(k, j, lu.get(p, j));
                lu.set(p, j, t);
            }
        }
        let d = lu.get(k, k);
        for i in k + 1..n {
            let mult = lu.get(i, k) / d;
            lu.set(i, k, mult);
            if mult != 0.0 {
                for j in k + 1..n {
                    let v = lu.get(i, j) - mult * lu.get(k, j);
                    lu.set(i, j, v);
                }
            }
        }
    }
    Ok(LuFactors { lu, pivots })
}

/// Solve `op(A) X = B` (left) or `X op(A) = B` (right) given an LU
/// factorization of `A`, overwriting `B` with the solution (LAPACK `GETRS`,
/// extended with a right-side variant).
///
/// # Panics
///
/// Panics if the dimensions of `B` are incompatible with `A`.
pub fn getrs(f: &LuFactors, ta: Transpose, side: Side, b: &mut Matrix) {
    let l = f.l();
    match (side, ta) {
        (Side::Left, Transpose::No) => {
            // A X = B -> L U X = P B.
            let mut x = f.permute(b);
            trsm(Side::Left, Triangle::Lower, Transpose::No, 1.0, &l, &mut x);
            trsm(
                Side::Left,
                Triangle::Upper,
                Transpose::No,
                1.0,
                &f.lu,
                &mut x,
            );
            *b = x;
        }
        (Side::Left, Transpose::Yes) => {
            // A^T X = B -> U^T L^T P X = B.
            let mut x = b.clone();
            trsm(
                Side::Left,
                Triangle::Upper,
                Transpose::Yes,
                1.0,
                &f.lu,
                &mut x,
            );
            trsm(Side::Left, Triangle::Lower, Transpose::Yes, 1.0, &l, &mut x);
            *b = f.permute_inv(&x);
        }
        (Side::Right, Transpose::No) => {
            // X A = B with P A = L U, i.e. A = P^T L U:
            // X P^T L U = B; solve for Y = X P^T, then X = Y P.
            let mut x = b.clone();
            trsm(
                Side::Right,
                Triangle::Upper,
                Transpose::No,
                1.0,
                &f.lu,
                &mut x,
            );
            trsm(Side::Right, Triangle::Lower, Transpose::No, 1.0, &l, &mut x);
            *b = permute_cols_inv(f, &x);
        }
        (Side::Right, Transpose::Yes) => {
            // X A^T = B <=> A X^T = B^T.
            let mut xt = b.transposed();
            getrs(f, Transpose::No, Side::Left, &mut xt);
            *b = xt.transposed();
        }
    }
}

fn permute_cols_inv(f: &LuFactors, x: &Matrix) -> Matrix {
    // Given y = X P^T, recover X = y P (columns permuted by pivot sequence).
    let mut out = x.clone();
    for (k, &p) in f.pivots.iter().enumerate().rev() {
        if p != k {
            for i in 0..out.rows() {
                let t = out.get(i, k);
                out.set(i, k, out.get(i, p));
                out.set(i, p, t);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms::relative_error;

    fn test_matrix(n: usize) -> Matrix {
        // Diagonally dominant, well-conditioned.
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                n as f64 + 1.0
            } else {
                (((i * 31 + j * 17) % 11) as f64 - 5.0) / 11.0
            }
        })
    }

    #[test]
    fn factorization_reconstructs() {
        let a = test_matrix(7);
        let f = lu_factor(&a).unwrap();
        let pa = f.permute(&a);
        let lu = matmul(&f.l(), Transpose::No, &f.u(), Transpose::No);
        assert!(relative_error(&lu, &pa) < 1e-12);
    }

    #[test]
    fn solve_left_no_trans() {
        let a = test_matrix(6);
        let x = Matrix::from_fn(6, 2, |i, j| (i + j) as f64 - 3.0);
        let b = matmul(&a, Transpose::No, &x, Transpose::No);
        let f = lu_factor(&a).unwrap();
        let mut got = b.clone();
        getrs(&f, Transpose::No, Side::Left, &mut got);
        assert!(relative_error(&got, &x) < 1e-10);
    }

    #[test]
    fn solve_left_trans() {
        let a = test_matrix(5);
        let x = Matrix::from_fn(5, 3, |i, j| 0.5 * (i as f64) - (j as f64));
        let b = matmul(&a, Transpose::Yes, &x, Transpose::No);
        let f = lu_factor(&a).unwrap();
        let mut got = b.clone();
        getrs(&f, Transpose::Yes, Side::Left, &mut got);
        assert!(relative_error(&got, &x) < 1e-10);
    }

    #[test]
    fn solve_right_no_trans() {
        let a = test_matrix(4);
        let x = Matrix::from_fn(3, 4, |i, j| (2 * i + 3 * j) as f64 * 0.1);
        let b = matmul(&x, Transpose::No, &a, Transpose::No);
        let f = lu_factor(&a).unwrap();
        let mut got = b.clone();
        getrs(&f, Transpose::No, Side::Right, &mut got);
        assert!(relative_error(&got, &x) < 1e-10);
    }

    #[test]
    fn solve_right_trans() {
        let a = test_matrix(4);
        let x = Matrix::from_fn(2, 4, |i, j| (i * 5 + j) as f64);
        let b = matmul(&x, Transpose::No, &a, Transpose::Yes);
        let f = lu_factor(&a).unwrap();
        let mut got = b.clone();
        getrs(&f, Transpose::Yes, Side::Right, &mut got);
        assert!(relative_error(&got, &x) < 1e-10);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::zeros(3, 3);
        let err = lu_factor(&a).unwrap_err();
        assert_eq!(err, LinalgError::SingularPivot(0));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            lu_factor(&a),
            Err(LinalgError::DimensionMismatch(_))
        ));
    }
}
