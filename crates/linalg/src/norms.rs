use crate::matrix::Matrix;

/// The Frobenius norm `sqrt(sum a_ij^2)`.
#[must_use]
pub fn frobenius_norm(a: &Matrix) -> f64 {
    a.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// The largest absolute entry.
#[must_use]
pub fn max_abs(a: &Matrix) -> f64 {
    a.as_slice().iter().fold(0.0, |acc, v| acc.max(v.abs()))
}

/// Relative error `||got - want||_F / max(||want||_F, 1)`.
///
/// The denominator is floored at 1 so comparisons against (near-)zero
/// reference values remain meaningful.
///
/// # Panics
///
/// Panics if the shapes differ.
#[must_use]
pub fn relative_error(got: &Matrix, want: &Matrix) -> f64 {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "relative_error: shape mismatch"
    );
    frobenius_norm(&(got - want)) / frobenius_norm(want).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frobenius_of_identity() {
        assert!((frobenius_norm(&Matrix::identity(9)) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn max_abs_finds_extreme() {
        let mut m = Matrix::zeros(3, 3);
        m.set(1, 2, -7.5);
        assert_eq!(max_abs(&m), 7.5);
    }

    #[test]
    fn relative_error_zero_for_equal() {
        let m = Matrix::from_fn(2, 5, |i, j| (i * j) as f64);
        assert_eq!(relative_error(&m, &m), 0.0);
    }

    #[test]
    fn relative_error_scales() {
        let a = Matrix::identity(4);
        let mut b = a.clone();
        b.set(0, 0, 1.5);
        let e = relative_error(&b, &a);
        assert!((e - 0.25).abs() < 1e-15); // ||diff|| = 0.5, ||a|| = 2
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn relative_error_rejects_mismatch() {
        let _ = relative_error(&Matrix::zeros(2, 2), &Matrix::zeros(2, 3));
    }
}
