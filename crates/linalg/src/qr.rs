use crate::matrix::Matrix;

/// A Householder QR factorization `A = Q * R` with `Q` orthogonal and `R`
/// upper-triangular (LAPACK `GEQRF` + `ORGQR`).
#[derive(Debug, Clone)]
pub struct QrFactors {
    q: Matrix,
    r: Matrix,
}

impl QrFactors {
    /// The orthogonal factor `Q` (`m`-by-`m`).
    #[must_use]
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-triangular factor `R` (`m`-by-`n`).
    #[must_use]
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Consume the factorization, returning `(Q, R)`.
    #[must_use]
    pub fn into_parts(self) -> (Matrix, Matrix) {
        (self.q, self.r)
    }
}

/// Compute a full Householder QR factorization of `a`.
///
/// `Q` is accumulated explicitly as an `m`-by-`m` orthogonal matrix; this is
/// used primarily to *generate* random orthogonal matrices for the
/// experiments, so simplicity beats performance here.
///
/// # Example
///
/// ```
/// use gmc_linalg::{householder_qr, matmul, relative_error, Matrix, Transpose};
/// let a = Matrix::from_fn(4, 3, |i, j| ((i * 3 + j * 2) % 5) as f64 + 1.0);
/// let f = householder_qr(&a);
/// let qr = matmul(f.q(), Transpose::No, f.r(), Transpose::No);
/// assert!(relative_error(&qr, &a) < 1e-12);
/// ```
#[must_use]
pub fn householder_qr(a: &Matrix) -> QrFactors {
    let m = a.rows();
    let n = a.cols();
    let mut r = a.clone();
    let mut q = Matrix::identity(m);

    for k in 0..n.min(m.saturating_sub(1)) {
        // Build the Householder vector for column k.
        let mut norm = 0.0;
        for i in k..m {
            let v = r.get(i, k);
            norm += v * v;
        }
        let norm = norm.sqrt();
        if norm == 0.0 {
            continue;
        }
        let akk = r.get(k, k);
        let alpha = if akk >= 0.0 { -norm } else { norm };
        let mut v = vec![0.0; m];
        v[k] = akk - alpha;
        for i in k + 1..m {
            v[i] = r.get(i, k);
        }
        let vtv: f64 = v.iter().map(|x| x * x).sum();
        if vtv == 0.0 {
            continue;
        }
        let beta = 2.0 / vtv;

        // R <- (I - beta v v^T) R.
        for j in 0..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i] * r.get(i, j);
            }
            let f = beta * dot;
            for i in k..m {
                let val = r.get(i, j) - f * v[i];
                r.set(i, j, val);
            }
        }
        // Q <- Q (I - beta v v^T).
        for i in 0..m {
            let mut dot = 0.0;
            for p in k..m {
                dot += q.get(i, p) * v[p];
            }
            let f = beta * dot;
            for p in k..m {
                let val = q.get(i, p) - f * v[p];
                q.set(i, p, val);
            }
        }
    }
    // Clean tiny subdiagonal residue so R is exactly upper-triangular.
    for j in 0..n {
        for i in j + 1..m {
            r.set(i, j, 0.0);
        }
    }
    QrFactors { q, r }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::matrix::Transpose;
    use crate::norms::relative_error;

    #[test]
    fn reconstructs_input() {
        let a = Matrix::from_fn(5, 5, |i, j| (((i * 7 + j * 3) % 10) as f64 - 4.5) / 2.0);
        let f = householder_qr(&a);
        let qr = matmul(f.q(), Transpose::No, f.r(), Transpose::No);
        assert!(relative_error(&qr, &a) < 1e-12);
    }

    #[test]
    fn q_is_orthogonal() {
        let a = Matrix::from_fn(6, 6, |i, j| ((i as f64) - (j as f64) * 1.7).sin());
        let f = householder_qr(&a);
        let qtq = matmul(f.q(), Transpose::Yes, f.q(), Transpose::No);
        assert!(qtq.is_identity(1e-12));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64 + 1.0);
        let f = householder_qr(&a);
        assert!(f.r().is_upper_triangular(0.0));
    }

    #[test]
    fn tall_matrix() {
        let a = Matrix::from_fn(7, 3, |i, j| ((i + j * j) % 6) as f64 - 2.0);
        let f = householder_qr(&a);
        let qr = matmul(f.q(), Transpose::No, f.r(), Transpose::No);
        assert!(relative_error(&qr, &a) < 1e-12);
        assert_eq!(f.q().rows(), 7);
        assert_eq!(f.q().cols(), 7);
        assert_eq!(f.r().rows(), 7);
        assert_eq!(f.r().cols(), 3);
    }

    #[test]
    fn into_parts_returns_both() {
        // Householder reflectors may flip signs, so check Q R = A rather
        // than expecting Q = R = I.
        let a = Matrix::identity(3);
        let (q, r) = householder_qr(&a).into_parts();
        let qr = matmul(&q, Transpose::No, &r, Transpose::No);
        assert!(relative_error(&qr, &a) < 1e-13);
        assert!(r.is_upper_triangular(0.0));
    }
}
