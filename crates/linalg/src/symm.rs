use crate::matrix::{Matrix, Transpose};

/// Which side a (symmetric or triangular) operand appears on in a
/// two-operand kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The structured operand is the left factor.
    Left,
    /// The structured operand is the right factor.
    Right,
}

impl Side {
    /// The opposite side.
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// Symmetric matrix-matrix multiply (BLAS `SYMM`, extended with `op(B)` as in
/// the paper's Table I): `C := alpha * A * op(B) + beta * C` (left) or
/// `C := alpha * op(B) * A + beta * C` (right), with `A` symmetric.
///
/// The full storage of `A` is referenced (we keep symmetric matrices dense),
/// but only `A`'s symmetry is assumed, never checked.
///
/// # Panics
///
/// Panics if `A` is not square or the dimensions are inconsistent.
///
/// # Example
///
/// ```
/// use gmc_linalg::{symm, Matrix, Side, Transpose};
/// let a = Matrix::identity(2);
/// let b = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
/// let mut c = Matrix::zeros(2, 2);
/// symm(Side::Left, 1.0, &a, &b, Transpose::No, 0.0, &mut c);
/// assert_eq!(c, b);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn symm(
    side: Side,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    tb: Transpose,
    beta: f64,
    c: &mut Matrix,
) {
    assert!(a.is_square(), "symm: A must be square");
    let bdim = match tb {
        Transpose::No => (b.rows(), b.cols()),
        Transpose::Yes => (b.cols(), b.rows()),
    };
    let (m, n) = match side {
        Side::Left => (a.rows(), bdim.1),
        Side::Right => (bdim.0, a.rows()),
    };
    match side {
        Side::Left => assert_eq!(a.cols(), bdim.0, "symm: size mismatch"),
        Side::Right => assert_eq!(bdim.1, a.rows(), "symm: size mismatch"),
    }
    assert_eq!((c.rows(), c.cols()), (m, n), "symm: C has wrong shape");

    if beta != 1.0 {
        for v in c.as_mut_slice() {
            *v *= beta;
        }
    }

    // Symmetric operands are stored dense (full storage), so both sides
    // route straight through the blocked GEMM core: the structure only
    // matters to the *compiler's* cost model, not to the multiply itself.
    let (brs, bcs) = crate::gemm::op_strides(b, tb);
    let k = a.rows();
    let ldc = c.rows();
    match side {
        Side::Left => crate::gemm::gemm_acc_strided(
            alpha,
            m,
            n,
            k,
            a.as_slice(),
            1,
            a.rows(),
            b.as_slice(),
            brs,
            bcs,
            c.as_mut_slice(),
            ldc,
        ),
        Side::Right => crate::gemm::gemm_acc_strided(
            alpha,
            m,
            n,
            k,
            b.as_slice(),
            brs,
            bcs,
            a.as_slice(),
            1,
            a.rows(),
            c.as_mut_slice(),
            ldc,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms::relative_error;

    fn sym(n: usize) -> Matrix {
        let mut a = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 5) % 7) as f64);
        a.symmetrize();
        a
    }

    #[test]
    fn left_matches_gemm() {
        let a = sym(4);
        let b = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 - 2.0);
        let mut c = Matrix::zeros(4, 3);
        symm(Side::Left, 1.0, &a, &b, Transpose::No, 0.0, &mut c);
        let want = matmul(&a, Transpose::No, &b, Transpose::No);
        assert!(relative_error(&c, &want) < 1e-13);
    }

    #[test]
    fn right_matches_gemm() {
        let a = sym(3);
        let b = Matrix::from_fn(5, 3, |i, j| (2 * i + j) as f64);
        let mut c = Matrix::zeros(5, 3);
        symm(Side::Right, 1.0, &a, &b, Transpose::No, 0.0, &mut c);
        let want = matmul(&b, Transpose::No, &a, Transpose::No);
        assert!(relative_error(&c, &want) < 1e-13);
    }

    #[test]
    fn transposed_general_operand() {
        let a = sym(4);
        let b = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let mut c = Matrix::zeros(4, 3);
        symm(Side::Left, 1.0, &a, &b, Transpose::Yes, 0.0, &mut c);
        let want = matmul(&a, Transpose::No, &b, Transpose::Yes);
        assert!(relative_error(&c, &want) < 1e-13);

        // Side::Right with op(B) = B (3x4): C = B * A is 3x4.
        let mut c3 = Matrix::zeros(3, 4);
        symm(Side::Right, 1.0, &a, &b, Transpose::No, 0.0, &mut c3);
        let want3 = matmul(&b, Transpose::No, &a, Transpose::No);
        assert!(relative_error(&c3, &want3) < 1e-13);
    }

    #[test]
    fn alpha_beta_accumulate() {
        let a = sym(2);
        let b = Matrix::identity(2);
        let mut c = Matrix::from_fn(2, 2, |_, _| 1.0);
        symm(Side::Left, 2.0, &a, &b, Transpose::No, 3.0, &mut c);
        for (i, j, v) in c.iter_indexed() {
            assert!((v - (2.0 * a.get(i, j) + 3.0)).abs() < 1e-13);
        }
    }

    #[test]
    #[should_panic(expected = "symm: A must be square")]
    fn rejects_non_square_a() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 3);
        let mut c = Matrix::zeros(2, 3);
        symm(Side::Left, 1.0, &a, &b, Transpose::No, 0.0, &mut c);
    }
}
