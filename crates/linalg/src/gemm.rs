//! Cache-blocked, packed GEMM in the BLIS style.
//!
//! # Algorithm
//!
//! The kernel follows the five-loop blocked decomposition of Goto/BLIS:
//!
//! ```text
//! for jc in 0..n step NC            // B column stripes      (L3 / memory)
//!   for pc in 0..k step KC          // depth panels          (Bp -> L2/L3)
//!     pack Bp = op(B)[pc.., jc..]   // KC x NC, NR-column micro-panels
//!     for ic in 0..m step MC        // A row blocks          (Ap -> L2)
//!       pack Ap = op(A)[ic.., pc..] // MC x KC, MR-row micro-panels
//!       for jr in 0..NC step NR     // micro-panel of Bp     (L1)
//!         for ir in 0..MC step MR   // micro-panel of Ap     (registers)
//!           C[ic+ir.., jc+jr..] += alpha * micro(MR x NR)
//! ```
//!
//! The micro-kernel keeps an `MR x NR` tile of C in registers and streams
//! the packed panels with unit stride, so the innermost loop is a pure
//! FMA/mul-add sweep the compiler can vectorize. Both transpose flags are
//! absorbed by the *packing* routines (a transposed operand is just a
//! different stride pair), which is why the four `(ta, tb)` combinations
//! of the seed's scalar kernel collapse into one blocked core.
//!
//! # Blocking parameters
//!
//! | param | value      | constraint |
//! |-------|------------|------------|
//! | `MR`  | 16         | rows of the register tile (multiple of the SIMD width) |
//! | `NR`  | 14, 4 or 6 | columns of the register tile (14 AVX-512, 4 AVX2, else 6) |
//! | `KC`  | 256        | depth panel; a `KC x NR` B micro-panel stays near L1 |
//! | `MC`  | 128        | row block; the packed `MC x KC` A block stays L2-resident |
//! | `NC`  | 4096       | column stripe; bounds the packed B stripe (`KC*NC` doubles) |
//!
//! On x86-64 the micro-kernel is selected **at runtime** down a
//! three-rung ladder, so binaries built without `target-cpu=native`
//! still hit the widest path the executing CPU supports:
//!
//! 1. `avx512f` → an explicit `std::arch` 16x14 tile in 28 zmm
//!    accumulators (`#[target_feature(enable = "avx512f")]`);
//! 2. `avx2` + `fma` → a 16x4 tile filling all 16 ymm registers with
//!    accumulators, for the in-between host generations;
//! 3. otherwise (and on every other architecture) a safe
//!    autovectorizable 16x6 kernel.
//!
//! Detection is a cached flag, checked once per `gemm_core` call, far
//! outside the inner loops. Measured numbers are tracked in
//! `BENCH_gemm.json` via `cargo run --release --bin bench_gemm`.
//!
//! Padding in the packed buffers makes every micro-kernel invocation a
//! full `MR x NR` tile; ragged edges only affect the write-back mask, so
//! arbitrary (non-multiple) sizes run the same inner loop.
//!
//! # Workspace
//!
//! Packing buffers come from a [`GemmWorkspace`]: pass one explicitly via
//! [`gemm_with`] to amortize across repeated multiplies (e.g. chain
//! execution), or use [`gemm`], which draws from a thread-local workspace
//! and therefore performs **no allocation after the first call** on a
//! given thread for a given problem size.
//!
//! # Parallelism
//!
//! With the `parallel` crate feature, [`gemm`] splits the `jc` column
//! stripes of C across threads (each thread runs the full serial core on
//! a disjoint column range, with its own thread-local workspace). The
//! numeric result is identical to the serial kernel: every C element is
//! still produced by exactly one thread in the same summation order.
//! Caveat: the vendored rayon shim spawns OS threads per call (no pool),
//! so the allocation-free workspace reuse below applies to the *serial*
//! path; a pooled runtime is a ROADMAP follow-on.
//!
//! # Small problems
//!
//! Packing costs `O(mk + kn)` moves; below [`BLOCKED_MIN_WORK`]
//! multiply-adds the dispatcher falls back to the seed's scalar kernel
//! ([`gemm_scalar`]), which is kept both as that fallback and as the
//! reference baseline recorded in `BENCH_gemm.json`.

use crate::matrix::{Matrix, Transpose};
use std::cell::RefCell;

/// Rows of the register micro-tile.
pub const MR: usize = 16;
/// Columns of the AVX-512 register micro-tile: a 16x14 tile holds 28 zmm
/// accumulators + 2 A vectors + 1 broadcast = 31 of 32 registers (the
/// BLIS skylake-x shape).
#[cfg(target_arch = "x86_64")]
const NR_AVX512: usize = 14;
/// Columns of the AVX2 register micro-tile: 16x4 keeps the accumulator in
/// all 16 ymm registers; the A vectors fold into the FMA's memory
/// operand, so only the B broadcast transiently spills. Selected on hosts
/// with AVX2+FMA but no AVX-512 (the "in-between" generations).
#[cfg(target_arch = "x86_64")]
const NR_AVX2: usize = 4;
/// Columns of the portable register micro-tile: 16x6 keeps the
/// autovectorized kernel inside 16 ymm registers' worth of accumulators
/// without spilling.
const NR_PORTABLE: usize = 6;
/// Columns of the *widest* micro-tile the runtime dispatcher may select
/// on this architecture (the actual tile is chosen per process by CPU
/// feature detection; see the module docs).
#[cfg(target_arch = "x86_64")]
pub const NR: usize = NR_AVX512;
#[cfg(not(target_arch = "x86_64"))]
#[allow(missing_docs)]
pub const NR: usize = NR_PORTABLE;
/// Depth (k) blocking: length of packed micro-panels.
pub const KC: usize = 256;
/// Row (m) blocking: rows of A packed per block.
pub const MC: usize = 128;
/// Column (n) blocking: width of a packed B stripe.
pub const NC: usize = 4096;

/// Minimum `m*n*k` for the blocked path; below this the scalar kernel's
/// zero packing overhead wins.
pub const BLOCKED_MIN_WORK: usize = 32 * 32 * 32;

/// Fused multiply-add when the target has hardware FMA; plain mul+add
/// otherwise (`f64::mul_add` without the `fma` target feature lowers to a
/// libm call, which would be ruinous in the inner loop).
#[inline(always)]
fn fmadd(a: f64, b: f64, acc: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

/// Reusable packing buffers for the blocked kernel.
///
/// Buffers grow on demand and are never shrunk, so repeated multiplies of
/// the same (or smaller) problem sizes are allocation-free.
#[derive(Default, Debug)]
pub struct GemmWorkspace {
    ap: Vec<f64>,
    bp: Vec<f64>,
}

impl GemmWorkspace {
    /// An empty workspace; buffers are sized lazily by the kernel.
    #[must_use]
    pub fn new() -> Self {
        GemmWorkspace::default()
    }

    /// Bytes currently held by the packing buffers.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        (self.ap.capacity() + self.bp.capacity()) * std::mem::size_of::<f64>()
    }
}

thread_local! {
    static TLS_WS: RefCell<GemmWorkspace> = RefCell::new(GemmWorkspace::new());
}

/// General matrix-matrix multiply: `C := alpha * op(A) * op(B) + beta * C`.
///
/// Dispatches to the cache-blocked packed kernel (see the module docs) for
/// problems above [`BLOCKED_MIN_WORK`] multiply-adds and to the scalar
/// kernel below it, using a thread-local packing workspace.
///
/// # Panics
///
/// Panics if the operand dimensions are inconsistent.
///
/// # Example
///
/// ```
/// use gmc_linalg::{gemm, Matrix, Transpose};
/// let a = Matrix::identity(3);
/// let b = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
/// let mut c = Matrix::zeros(3, 2);
/// gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
/// assert_eq!(c, b);
/// ```
pub fn gemm(
    alpha: f64,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, n, k) = check_dims(a, ta, b, tb, c);
    scale_beta(c, beta);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    if m * n * k < BLOCKED_MIN_WORK {
        scalar_core(alpha, a, ta, b, tb, c);
    } else {
        blocked_entry(m, n, k, alpha, a, ta, b, tb, c);
    }
}

/// [`gemm`] with a caller-provided workspace (always the blocked kernel
/// when the problem clears [`BLOCKED_MIN_WORK`]).
///
/// Use this when the caller executes many multiplies and wants packing
/// buffers reused deterministically instead of per-thread. With the
/// `parallel` feature on a multi-threaded host, wide problems still take
/// the column-stripe split (per-thread workspaces; `ws` goes unused for
/// that call) so the session path never loses GEMM parallelism — the
/// result is bitwise identical either way.
///
/// # Panics
///
/// Panics if the operand dimensions are inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with(
    ws: &mut GemmWorkspace,
    alpha: f64,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, n, k) = check_dims(a, ta, b, tb, c);
    scale_beta(c, beta);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    if m * n * k < BLOCKED_MIN_WORK {
        scalar_core(alpha, a, ta, b, tb, c);
        return;
    }
    let (ars, acs) = op_strides(a, ta);
    let (brs, bcs) = op_strides(b, tb);
    let ldc = c.rows();
    #[cfg(feature = "parallel")]
    if parallel_stripes(
        m,
        n,
        k,
        alpha,
        a.as_slice(),
        ars,
        acs,
        b.as_slice(),
        brs,
        bcs,
        c.as_mut_slice(),
        ldc,
    ) {
        return;
    }
    gemm_core(
        ws,
        m,
        n,
        k,
        alpha,
        a.as_slice(),
        ars,
        acs,
        b.as_slice(),
        brs,
        bcs,
        c.as_mut_slice(),
        ldc,
    );
}

/// Force the blocked kernel regardless of problem size (test/bench entry
/// point; [`gemm`] normally handles dispatch).
///
/// # Panics
///
/// Panics if the operand dimensions are inconsistent.
pub fn gemm_blocked(
    alpha: f64,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, n, k) = check_dims(a, ta, b, tb, c);
    scale_beta(c, beta);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    blocked_entry(m, n, k, alpha, a, ta, b, tb, c);
}

/// The seed's scalar kernel: column-axpy with a panel-of-four update.
///
/// Kept as the small-problem fallback, as the correctness reference for
/// the blocked kernel, and as the baseline the `BENCH_gemm.json`
/// trajectory compares against.
///
/// # Panics
///
/// Panics if the operand dimensions are inconsistent.
pub fn gemm_scalar(
    alpha: f64,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, n, k) = check_dims(a, ta, b, tb, c);
    scale_beta(c, beta);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    scalar_core(alpha, a, ta, b, tb, c);
}

/// Convenience wrapper computing `op(A) * op(B)` into a fresh matrix.
#[must_use]
pub fn matmul(a: &Matrix, ta: Transpose, b: &Matrix, tb: Transpose) -> Matrix {
    let (m, _) = dims(a, ta);
    let (_, n) = dims(b, tb);
    let mut c = Matrix::zeros(m, n);
    gemm(1.0, a, ta, b, tb, 0.0, &mut c);
    c
}

fn dims(x: &Matrix, t: Transpose) -> (usize, usize) {
    match t {
        Transpose::No => (x.rows(), x.cols()),
        Transpose::Yes => (x.cols(), x.rows()),
    }
}

/// `(row stride, column stride)` of `op(X)` over X's column-major data.
pub(crate) fn op_strides(x: &Matrix, t: Transpose) -> (usize, usize) {
    match t {
        Transpose::No => (1, x.rows()),
        Transpose::Yes => (x.rows(), 1),
    }
}

fn check_dims(
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    c: &Matrix,
) -> (usize, usize, usize) {
    let (m, ka) = dims(a, ta);
    let (kb, n) = dims(b, tb);
    assert_eq!(ka, kb, "gemm: inner dimensions differ ({ka} vs {kb})");
    assert_eq!(c.rows(), m, "gemm: C has wrong row count");
    assert_eq!(c.cols(), n, "gemm: C has wrong column count");
    (m, n, ka)
}

fn scale_beta(c: &mut Matrix, beta: f64) {
    if beta != 1.0 {
        for v in c.as_mut_slice() {
            *v *= beta;
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked core
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn blocked_entry(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    c: &mut Matrix,
) {
    let (ars, acs) = op_strides(a, ta);
    let (brs, bcs) = op_strides(b, tb);
    let ldc = c.rows();

    #[cfg(feature = "parallel")]
    if parallel_stripes(
        m,
        n,
        k,
        alpha,
        a.as_slice(),
        ars,
        acs,
        b.as_slice(),
        brs,
        bcs,
        c.as_mut_slice(),
        ldc,
    ) {
        return;
    }

    TLS_WS.with(|ws| {
        gemm_core(
            &mut ws.borrow_mut(),
            m,
            n,
            k,
            alpha,
            a.as_slice(),
            ars,
            acs,
            b.as_slice(),
            brs,
            bcs,
            c.as_mut_slice(),
            ldc,
        );
    });
}

/// Split C's columns into tile-aligned stripes across threads; each
/// thread runs the serial core on its stripe with its own thread-local
/// workspace. Stripes are disjoint, so results are bitwise identical to
/// the serial kernel. Returns `false` (doing nothing) when one thread —
/// or too few columns — makes the split pointless; the caller then runs
/// the serial core itself.
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
fn parallel_stripes(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    ars: usize,
    acs: usize,
    b: &[f64],
    brs: usize,
    bcs: usize,
    c: &mut [f64],
    ldc: usize,
) -> bool {
    let nrv = nr_runtime();
    let threads = rayon::current_num_threads().min(n.div_ceil(2 * nrv)).max(1);
    if threads <= 1 {
        return false;
    }
    let cols_per = n.div_ceil(threads).div_ceil(nrv) * nrv;
    rayon::scope(|s| {
        for (chunk_idx, c_chunk) in c.chunks_mut(cols_per * ldc).enumerate() {
            let jc0 = chunk_idx * cols_per;
            s.spawn(move |_| {
                let nc = c_chunk.len() / ldc;
                TLS_WS.with(|ws| {
                    gemm_core(
                        &mut ws.borrow_mut(),
                        m,
                        nc,
                        k,
                        alpha,
                        a,
                        ars,
                        acs,
                        &b[jc0 * bcs..],
                        brs,
                        bcs,
                        c_chunk,
                        ldc,
                    );
                });
            });
        }
    });
    true
}

/// Iterate `(offset, len)` blocks of `total` in steps of `step`.
fn blocks(total: usize, step: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..total.div_ceil(step)).map(move |i| {
        let off = i * step;
        (off, step.min(total - off))
    })
}

fn ensure_len(buf: &mut Vec<f64>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

/// Cached runtime CPU-feature probe: `true` when the AVX-512 micro-kernel
/// may run on this machine.
#[cfg(target_arch = "x86_64")]
fn avx512_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static CACHE: AtomicU8 = AtomicU8::new(0); // 0 = unknown, 1 = no, 2 = yes
    match CACHE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let yes = std::is_x86_feature_detected!("avx512f");
            CACHE.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
    }
}

/// Cached runtime CPU-feature probe for the middle rung of the dispatch
/// ladder: AVX2 *and* FMA (both are required by the 16x4 kernel, and
/// pre-FMA AVX2 parts exist).
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static CACHE: AtomicU8 = AtomicU8::new(0); // 0 = unknown, 1 = no, 2 = yes
    match CACHE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let yes = std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma");
            CACHE.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
    }
}

/// The micro-tile width the runtime dispatcher selects on this machine
/// (used by the parallel column-stripe split; serial builds inline the
/// choice inside [`gemm_core`]).
#[cfg_attr(not(feature = "parallel"), allow(dead_code))]
pub(crate) fn nr_runtime() -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if avx512_available() {
            NR_AVX512
        } else if avx2_available() {
            NR_AVX2
        } else {
            NR_PORTABLE
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        NR_PORTABLE
    }
}

/// The serial blocked kernel over raw strided views:
/// `C[.., ..] += alpha * A_view(m x k) * B_view(k x n)`, with C column-major
/// of leading dimension `ldc`. `beta` must already be applied. Selects the
/// micro-kernel (and its tile width) by runtime CPU feature detection.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_core(
    ws: &mut GemmWorkspace,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    ars: usize,
    acs: usize,
    b: &[f64],
    brs: usize,
    bcs: usize,
    c: &mut [f64],
    ldc: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if avx512_available() {
        gemm_core_n::<NR_AVX512>(
            ws,
            m,
            n,
            k,
            alpha,
            a,
            ars,
            acs,
            b,
            brs,
            bcs,
            c,
            ldc,
            micro_kernel_avx512_entry,
        );
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        gemm_core_n::<NR_AVX2>(
            ws,
            m,
            n,
            k,
            alpha,
            a,
            ars,
            acs,
            b,
            brs,
            bcs,
            c,
            ldc,
            micro_kernel_avx2_entry,
        );
        return;
    }
    gemm_core_n::<NR_PORTABLE>(
        ws,
        m,
        n,
        k,
        alpha,
        a,
        ars,
        acs,
        b,
        brs,
        bcs,
        c,
        ldc,
        micro_kernel_portable::<NR_PORTABLE>,
    );
}

/// A micro-kernel entry point: `C_tile += alpha * Ap * Bp` over packed
/// panels, with `(m_eff, n_eff)` masking the ragged write-back.
type MicroKernelFn = fn(f64, &[f64], &[f64], &mut [f64], usize, usize, usize);

/// The blocked core, monomorphized per micro-tile width `NRV`. `micro`
/// must consume `kc x NRV` B panels (enforced by the instantiations in
/// [`gemm_core`]).
#[allow(clippy::too_many_arguments)]
fn gemm_core_n<const NRV: usize>(
    ws: &mut GemmWorkspace,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    ars: usize,
    acs: usize,
    b: &[f64],
    brs: usize,
    bcs: usize,
    c: &mut [f64],
    ldc: usize,
    micro: MicroKernelFn,
) {
    let GemmWorkspace { ap, bp } = ws;
    for (jc, nc) in blocks(n, NC) {
        for (pc, kc) in blocks(k, KC) {
            let nc_r = nc.div_ceil(NRV) * NRV;
            ensure_len(bp, nc_r * kc);
            pack_b::<NRV>(&mut bp[..nc_r * kc], b, brs, bcs, pc, kc, jc, nc);
            for (ic, mc) in blocks(m, MC) {
                let mc_r = mc.div_ceil(MR) * MR;
                ensure_len(ap, mc_r * kc);
                pack_a(&mut ap[..mc_r * kc], a, ars, acs, ic, mc, pc, kc);
                for (jr, nr_eff) in blocks(nc, NRV) {
                    let bpan = &bp[(jr / NRV) * NRV * kc..][..NRV * kc];
                    for (ir, mr_eff) in blocks(mc, MR) {
                        let apan = &ap[(ir / MR) * MR * kc..][..MR * kc];
                        let off = (jc + jr) * ldc + ic + ir;
                        let len = (nr_eff - 1) * ldc + mr_eff;
                        micro(
                            alpha,
                            apan,
                            bpan,
                            &mut c[off..off + len],
                            ldc,
                            mr_eff,
                            nr_eff,
                        );
                    }
                }
            }
        }
    }
}

/// Accumulating strided multiply for the structured kernels:
/// `C += alpha * A_view * B_view` with no beta scaling. Dispatches between
/// the scalar strided loop and the blocked core by problem size, using the
/// thread-local workspace.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_acc_strided(
    alpha: f64,
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    ars: usize,
    acs: usize,
    b: &[f64],
    brs: usize,
    bcs: usize,
    c: &mut [f64],
    ldc: usize,
) {
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    if m * n * k < BLOCKED_MIN_WORK {
        for j in 0..n {
            for p in 0..k {
                // No zero-skip here: the blocked path computes 0.0 * x
                // contributions too, and NaN/Inf propagation must not
                // change across the size threshold.
                let bpj = alpha * b[p * brs + j * bcs];
                let col = &mut c[j * ldc..j * ldc + m];
                for (i, ci) in col.iter_mut().enumerate() {
                    *ci += a[i * ars + p * acs] * bpj;
                }
            }
        }
    } else {
        TLS_WS.with(|ws| {
            gemm_core(
                &mut ws.borrow_mut(),
                m,
                n,
                k,
                alpha,
                a,
                ars,
                acs,
                b,
                brs,
                bcs,
                c,
                ldc,
            );
        });
    }
}

/// Pack an `mc x kc` block of the strided A view into MR-row micro-panels,
/// zero-padding the ragged last panel.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    ap: &mut [f64],
    a: &[f64],
    ars: usize,
    acs: usize,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
) {
    let mut dst = 0;
    let mut ip = 0;
    while ip < mc {
        let rows = MR.min(mc - ip);
        for p in 0..kc {
            let base = (i0 + ip) * ars + (p0 + p) * acs;
            if rows == MR && ars == 1 {
                ap[dst..dst + MR].copy_from_slice(&a[base..base + MR]);
            } else {
                for i in 0..rows {
                    ap[dst + i] = a[base + i * ars];
                }
                ap[dst + rows..dst + MR].fill(0.0);
            }
            dst += MR;
        }
        ip += MR;
    }
}

/// Pack a `kc x nc` block of the strided B view into `NRV`-column
/// micro-panels, zero-padding the ragged last panel.
#[allow(clippy::too_many_arguments)]
fn pack_b<const NRV: usize>(
    bp: &mut [f64],
    b: &[f64],
    brs: usize,
    bcs: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
) {
    let mut dst = 0;
    let mut jp = 0;
    while jp < nc {
        let cols = NRV.min(nc - jp);
        for p in 0..kc {
            let base = (p0 + p) * brs + (j0 + jp) * bcs;
            if cols == NRV && bcs == 1 {
                bp[dst..dst + NRV].copy_from_slice(&b[base..base + NRV]);
            } else {
                for j in 0..cols {
                    bp[dst + j] = b[base + j * bcs];
                }
                bp[dst + cols..dst + NRV].fill(0.0);
            }
            dst += NRV;
        }
        jp += NRV;
    }
}

/// Safe entry to the AVX-512 micro-kernel.
///
/// Only reachable from [`gemm_core`] after [`avx512_available`] returned
/// `true`, which is the safety contract of the `target_feature` call.
#[cfg(target_arch = "x86_64")]
fn micro_kernel_avx512_entry(
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
) {
    debug_assert!(avx512_available(), "dispatcher must gate this path");
    // SAFETY: the dispatcher selected this entry only after runtime
    // detection of avx512f on the executing CPU.
    unsafe { micro_kernel_avx512(alpha, ap, bp, c, ldc, m_eff, n_eff) }
}

/// Register-tiled micro-kernel: `C_tile += alpha * Ap * Bp` where Ap is an
/// `MR x kc` packed panel and Bp a `kc x NR_AVX512` packed panel. The
/// accumulator lives in `MR x NR_AVX512` registers; `m_eff`/`n_eff` mask
/// the ragged write-back.
///
/// AVX-512 variant: the one explicitly-SIMD (and `unsafe`) routine in the
/// crate, compiled with its own `target_feature` so it exists in portable
/// builds and is chosen by runtime detection. Safety rests on the
/// packed-panel layout: `ap` holds `kc` groups of exactly `MR` doubles and
/// `bp` `kc` groups of exactly `NR_AVX512`, both zero-padded by the
/// packing routines, the caller slices `c` to cover the `m_eff x n_eff`
/// tile — and on the executing CPU supporting avx512f.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn micro_kernel_avx512(
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
) {
    use std::arch::x86_64::{
        _mm512_fmadd_pd, _mm512_loadu_pd, _mm512_set1_pd, _mm512_setzero_pd, _mm512_storeu_pd,
    };
    const NR: usize = NR_AVX512;
    const LANES: usize = 8;
    const AV: usize = MR / LANES; // A vectors per k step
    debug_assert_eq!(ap.len() % MR, 0);
    debug_assert_eq!(bp.len() / NR, ap.len() / MR);

    let kc = ap.len() / MR;
    unsafe {
        let mut acc = [_mm512_setzero_pd(); AV * NR];
        let mut apt = ap.as_ptr();
        let mut bpt = bp.as_ptr();
        for _ in 0..kc {
            let a0 = _mm512_loadu_pd(apt);
            let a1 = _mm512_loadu_pd(apt.add(LANES));
            for j in 0..NR {
                let bj = _mm512_set1_pd(*bpt.add(j));
                acc[AV * j] = _mm512_fmadd_pd(a0, bj, acc[AV * j]);
                acc[AV * j + 1] = _mm512_fmadd_pd(a1, bj, acc[AV * j + 1]);
            }
            apt = apt.add(MR);
            bpt = bpt.add(NR);
        }
        if m_eff == MR && n_eff == NR {
            let va = _mm512_set1_pd(alpha);
            for j in 0..NR {
                let cp = c.as_mut_ptr().add(j * ldc);
                let c0 = _mm512_loadu_pd(cp);
                let c1 = _mm512_loadu_pd(cp.add(LANES));
                _mm512_storeu_pd(cp, _mm512_fmadd_pd(acc[AV * j], va, c0));
                _mm512_storeu_pd(cp.add(LANES), _mm512_fmadd_pd(acc[AV * j + 1], va, c1));
            }
        } else {
            // Ragged edge: spill the tile and apply a masked scalar update.
            let mut tile = [[0.0f64; MR]; NR];
            for (j, col) in tile.iter_mut().enumerate() {
                _mm512_storeu_pd(col.as_mut_ptr(), acc[AV * j]);
                _mm512_storeu_pd(col.as_mut_ptr().add(LANES), acc[AV * j + 1]);
            }
            for j in 0..n_eff {
                let col = &mut c[j * ldc..j * ldc + m_eff];
                for (i, ci) in col.iter_mut().enumerate() {
                    *ci += alpha * tile[j][i];
                }
            }
        }
    }
}

/// Safe entry to the AVX2 micro-kernel.
///
/// Only reachable from [`gemm_core`] after [`avx2_available`] returned
/// `true`, which is the safety contract of the `target_feature` call.
#[cfg(target_arch = "x86_64")]
fn micro_kernel_avx2_entry(
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
) {
    debug_assert!(avx2_available(), "dispatcher must gate this path");
    // SAFETY: the dispatcher selected this entry only after runtime
    // detection of avx2 + fma on the executing CPU.
    unsafe { micro_kernel_avx2(alpha, ap, bp, c, ldc, m_eff, n_eff) }
}

/// Register-tiled AVX2+FMA micro-kernel over `kc x NR_AVX2` packed
/// panels — the middle rung of the runtime dispatch ladder (AVX-512 >
/// AVX2 > portable autovec), for the hosts where a portable build would
/// otherwise fall to the SSE2 baseline. Same packed-panel safety
/// contract as the AVX-512 kernel above; the 16x4 tile fills all 16 ymm
/// registers with accumulators and lets the FMA's memory operand stream
/// the L1-hot A panel.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn micro_kernel_avx2(
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
) {
    use std::arch::x86_64::{
        _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd,
    };
    const NR: usize = NR_AVX2;
    const LANES: usize = 4;
    const AV: usize = MR / LANES; // A vectors per k step
    debug_assert_eq!(ap.len() % MR, 0);
    debug_assert_eq!(bp.len() / NR, ap.len() / MR);

    let kc = ap.len() / MR;
    unsafe {
        let mut acc = [_mm256_setzero_pd(); AV * NR];
        let mut apt = ap.as_ptr();
        let mut bpt = bp.as_ptr();
        for _ in 0..kc {
            for j in 0..NR {
                let bj = _mm256_set1_pd(*bpt.add(j));
                for v in 0..AV {
                    let av = _mm256_loadu_pd(apt.add(v * LANES));
                    acc[AV * j + v] = _mm256_fmadd_pd(av, bj, acc[AV * j + v]);
                }
            }
            apt = apt.add(MR);
            bpt = bpt.add(NR);
        }
        if m_eff == MR && n_eff == NR {
            let va = _mm256_set1_pd(alpha);
            for j in 0..NR {
                let cp = c.as_mut_ptr().add(j * ldc);
                for v in 0..AV {
                    let cv = _mm256_loadu_pd(cp.add(v * LANES));
                    _mm256_storeu_pd(cp.add(v * LANES), _mm256_fmadd_pd(acc[AV * j + v], va, cv));
                }
            }
        } else {
            // Ragged edge: spill the tile and apply a masked scalar update.
            let mut tile = [[0.0f64; MR]; NR];
            for (j, col) in tile.iter_mut().enumerate() {
                for v in 0..AV {
                    _mm256_storeu_pd(col.as_mut_ptr().add(v * LANES), acc[AV * j + v]);
                }
            }
            for j in 0..n_eff {
                let col = &mut c[j * ldc..j * ldc + m_eff];
                for (i, ci) in col.iter_mut().enumerate() {
                    *ci += alpha * tile[j][i];
                }
            }
        }
    }
}

/// Portable autovectorized micro-kernel over `kc x NRV` panels (see the
/// AVX-512 one above for the contract). Generic over the tile width so it
/// can also serve as a correctness oracle for the wide tile in tests.
fn micro_kernel_portable<const NRV: usize>(
    alpha: f64,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
) {
    let mut acc = [[0.0f64; MR]; NRV];
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NRV)) {
        let a: &[f64; MR] = a.try_into().unwrap();
        let b: &[f64; NRV] = b.try_into().unwrap();
        for j in 0..NRV {
            let bj = b[j];
            for i in 0..MR {
                acc[j][i] = fmadd(a[i], bj, acc[j][i]);
            }
        }
    }
    if m_eff == MR && n_eff == NRV {
        for j in 0..NRV {
            let col = &mut c[j * ldc..j * ldc + MR];
            for i in 0..MR {
                col[i] += alpha * acc[j][i];
            }
        }
    } else {
        for j in 0..n_eff {
            let col = &mut c[j * ldc..j * ldc + m_eff];
            for (i, ci) in col.iter_mut().enumerate() {
                *ci += alpha * acc[j][i];
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar core (the seed kernel)
// ---------------------------------------------------------------------------

fn scalar_core(alpha: f64, a: &Matrix, ta: Transpose, b: &Matrix, tb: Transpose, c: &mut Matrix) {
    let (m, k) = dims(a, ta);
    let n = dims(b, tb).1;
    match (ta, tb) {
        (Transpose::No, Transpose::No) => {
            // Panel-of-four update: C(:, j..j+4) += alpha * A(:, p) *
            // B(p, j..j+4). Reusing A's column across four columns of C
            // quarters the traffic on A compared with a per-column axpy.
            let adata = a.as_slice();
            let mut j = 0;
            while j + 4 <= n {
                for p in 0..k {
                    let b0 = alpha * b.get(p, j);
                    let b1 = alpha * b.get(p, j + 1);
                    let b2 = alpha * b.get(p, j + 2);
                    let b3 = alpha * b.get(p, j + 3);
                    if b0 == 0.0 && b1 == 0.0 && b2 == 0.0 && b3 == 0.0 {
                        continue;
                    }
                    let acol = &adata[p * m..(p + 1) * m];
                    let cd = c.as_mut_slice();
                    let base = j * m;
                    for (i, &av) in acol.iter().enumerate() {
                        cd[base + i] += av * b0;
                        cd[base + m + i] += av * b1;
                        cd[base + 2 * m + i] += av * b2;
                        cd[base + 3 * m + i] += av * b3;
                    }
                }
                j += 4;
            }
            // Remainder columns.
            while j < n {
                for p in 0..k {
                    let bpj = alpha * b.get(p, j);
                    if bpj == 0.0 {
                        continue;
                    }
                    let acol = a.col(p);
                    let ccol = c.col_mut(j);
                    for i in 0..m {
                        ccol[i] += acol[i] * bpj;
                    }
                }
                j += 1;
            }
        }
        (Transpose::Yes, Transpose::No) => {
            // C(i,j) += alpha * dot(A(:,i), B(:,j)).
            for j in 0..n {
                let bcol = b.col(j);
                for i in 0..m {
                    let acol = a.col(i);
                    let mut s = 0.0;
                    for p in 0..k {
                        s += acol[p] * bcol[p];
                    }
                    let v = c.get(i, j) + alpha * s;
                    c.set(i, j, v);
                }
            }
        }
        (Transpose::No, Transpose::Yes) => {
            // C(:,j) += alpha * A(:,p) * B(j,p).
            for j in 0..n {
                for p in 0..k {
                    let bjp = alpha * b.get(j, p);
                    if bjp == 0.0 {
                        continue;
                    }
                    let acol = a.col(p);
                    let ccol = c.col_mut(j);
                    for i in 0..m {
                        ccol[i] += acol[i] * bjp;
                    }
                }
            }
        }
        (Transpose::Yes, Transpose::Yes) => {
            for j in 0..n {
                for i in 0..m {
                    let acol = a.col(i);
                    let mut s = 0.0;
                    for p in 0..k {
                        s += acol[p] * b.get(j, p);
                    }
                    let v = c.get(i, j) + alpha * s;
                    c.set(i, j, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a.get(i, p) * b.get(p, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn matches_naive_multiply() {
        let a = Matrix::from_fn(4, 6, |i, j| (i as f64) - 0.5 * (j as f64));
        let b = Matrix::from_fn(6, 3, |i, j| 1.0 / (1.0 + i as f64 + j as f64));
        let c = matmul(&a, Transpose::No, &b, Transpose::No);
        let expect = naive(&a, &b);
        for (i, j, v) in c.iter_indexed() {
            assert!((v - expect.get(i, j)).abs() < 1e-12);
        }
    }

    #[test]
    fn all_transpose_combinations_agree() {
        let a = Matrix::from_fn(5, 4, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let b = Matrix::from_fn(4, 6, |i, j| ((i + 2 * j) % 7) as f64 - 3.0);
        let reference = matmul(&a, Transpose::No, &b, Transpose::No);

        let at = a.transposed();
        let bt = b.transposed();
        for (x, tx) in [(&a, Transpose::No), (&at, Transpose::Yes)] {
            for (y, ty) in [(&b, Transpose::No), (&bt, Transpose::Yes)] {
                let c = matmul(x, tx, y, ty);
                assert_eq!(c.rows(), reference.rows());
                assert_eq!(c.cols(), reference.cols());
                for (i, j, v) in c.iter_indexed() {
                    assert!((v - reference.get(i, j)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = Matrix::identity(2);
        let b = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let mut c = Matrix::from_fn(2, 2, |_, _| 10.0);
        gemm(2.0, &a, Transpose::No, &b, Transpose::No, 0.5, &mut c);
        // C = 2 * B + 0.5 * 10
        assert_eq!(c.get(0, 0), 5.0);
        assert_eq!(c.get(1, 1), 11.0);
    }

    #[test]
    fn zero_alpha_only_scales_c() {
        let a = Matrix::from_fn(2, 2, |_, _| f64::NAN);
        let b = Matrix::identity(2);
        let mut c = Matrix::from_fn(2, 2, |_, _| 4.0);
        gemm(0.0, &a, Transpose::No, &b, Transpose::No, 0.25, &mut c);
        assert!(c.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, Transpose::No, &b, Transpose::No);
    }

    #[test]
    fn identity_is_neutral() {
        let b = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let c = matmul(&Matrix::identity(3), Transpose::No, &b, Transpose::No);
        assert_eq!(c, b);
    }

    #[test]
    fn blocked_matches_scalar_on_remainder_edges() {
        // Sizes straddling every blocking boundary: below/at/above MR, NR,
        // and KC, including 1-row/1-col and empty extents.
        let sizes = [
            (1, 1, 1),
            (1, 7, 5),
            (5, 1, 3),
            (MR - 1, NR - 1, 3),
            (MR, NR, KC),
            (MR + 1, NR + 1, KC + 1),
            (2 * MR + 3, 3 * NR + 1, KC + 7),
            (MC + MR + 1, NR, 9),
            (3, 2 * NR + 1, KC - 1),
        ];
        for &(m, n, k) in &sizes {
            let a = Matrix::from_fn(m, k, |i, j| ((3 * i + 5 * j) % 11) as f64 - 4.0);
            let b = Matrix::from_fn(k, n, |i, j| ((2 * i + 7 * j) % 13) as f64 - 6.0);
            let mut want = Matrix::from_fn(m, n, |i, j| (i + j) as f64);
            let mut got = want.clone();
            gemm_scalar(0.75, &a, Transpose::No, &b, Transpose::No, -1.5, &mut want);
            gemm_blocked(0.75, &a, Transpose::No, &b, Transpose::No, -1.5, &mut got);
            for (i, j, v) in got.iter_indexed() {
                assert!(
                    (v - want.get(i, j)).abs() <= 1e-9 * (1.0 + want.get(i, j).abs()),
                    "({m},{n},{k}) at ({i},{j}): {v} vs {}",
                    want.get(i, j)
                );
            }
        }
    }

    #[test]
    fn blocked_handles_all_transposes() {
        let (m, n, k) = (2 * MR + 5, 2 * NR + 3, 37);
        let a = Matrix::from_fn(m, k, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let b = Matrix::from_fn(k, n, |i, j| ((i + 2 * j) % 7) as f64 - 3.0);
        let at = a.transposed();
        let bt = b.transposed();
        let reference = {
            let mut c = Matrix::zeros(m, n);
            gemm_scalar(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
            c
        };
        for (x, tx) in [(&a, Transpose::No), (&at, Transpose::Yes)] {
            for (y, ty) in [(&b, Transpose::No), (&bt, Transpose::Yes)] {
                let mut c = Matrix::zeros(m, n);
                gemm_blocked(1.0, x, tx, y, ty, 0.0, &mut c);
                for (i, j, v) in c.iter_indexed() {
                    assert!(
                        (v - reference.get(i, j)).abs() < 1e-10,
                        "{tx:?}/{ty:?} at ({i},{j})"
                    );
                }
            }
        }
    }

    /// Drive one micro-kernel instantiation through the blocked core on a
    /// fresh workspace: `C += A * B` (no transposes, alpha = 1).
    fn run_core<const NRV: usize>(micro: MicroKernelFn, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut ws = GemmWorkspace::new();
        let ldc = c.rows();
        gemm_core_n::<NRV>(
            &mut ws,
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            1,
            a.rows(),
            b.as_slice(),
            1,
            b.rows(),
            c.as_mut_slice(),
            ldc,
            micro,
        );
    }

    #[test]
    fn portable_micro_kernel_matches_scalar() {
        // The portable 16x6 path must stay correct even on hosts where the
        // runtime dispatcher would pick AVX-512, so drive it explicitly.
        for &(m, n, k) in &[
            (MR - 1, NR_PORTABLE - 1, 5),
            (2 * MR + 3, 3 * NR_PORTABLE + 2, KC + 5),
            (MC + 1, NR_PORTABLE, 33),
        ] {
            let a = Matrix::from_fn(m, k, |i, j| ((3 * i + 5 * j) % 11) as f64 - 4.0);
            let b = Matrix::from_fn(k, n, |i, j| ((2 * i + 7 * j) % 13) as f64 - 6.0);
            let mut want = Matrix::zeros(m, n);
            gemm_scalar(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut want);
            let mut got = Matrix::zeros(m, n);
            run_core::<NR_PORTABLE>(micro_kernel_portable::<NR_PORTABLE>, &a, &b, &mut got);
            for (i, j, v) in got.iter_indexed() {
                assert!(
                    (v - want.get(i, j)).abs() < 1e-10,
                    "({m},{n},{k}) at ({i},{j})"
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn runtime_isa_paths_agree() {
        let (m, n, k) = (2 * MR + 5, 2 * NR_AVX512 + 3, KC + 9);
        let a = Matrix::from_fn(m, k, |i, j| ((i * 7 + j * 3) % 9) as f64 - 4.0);
        let b = Matrix::from_fn(k, n, |i, j| ((i + 2 * j) % 5) as f64 - 2.0);
        let mut narrow = Matrix::zeros(m, n);
        run_core::<NR_PORTABLE>(micro_kernel_portable::<NR_PORTABLE>, &a, &b, &mut narrow);
        // Cross-check every ISA rung the executing CPU supports against
        // the portable tile.
        let mut checked = Vec::new();
        if std::is_x86_feature_detected!("avx512f") {
            let mut wide = Matrix::zeros(m, n);
            run_core::<NR_AVX512>(micro_kernel_avx512_entry, &a, &b, &mut wide);
            checked.push(("avx512", wide));
        }
        if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
            let mut mid = Matrix::zeros(m, n);
            run_core::<NR_AVX2>(micro_kernel_avx2_entry, &a, &b, &mut mid);
            checked.push(("avx2", mid));
        }
        for (isa, got) in checked {
            for (i, j, v) in got.iter_indexed() {
                assert!(
                    (v - narrow.get(i, j)).abs() < 1e-10,
                    "{isa} mismatch at ({i},{j})"
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_micro_kernel_matches_scalar_on_ragged_edges() {
        if !(std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")) {
            return;
        }
        // Sizes straddling the 16x4 tile: full tiles, ragged rows, ragged
        // columns, and sub-tile problems.
        for &(m, n, k) in &[
            (MR, NR_AVX2, 7),
            (MR - 3, NR_AVX2 - 1, 5),
            (2 * MR + 3, 3 * NR_AVX2 + 2, KC + 5),
            (MC + 1, NR_AVX2, 33),
            (5, 2 * NR_AVX2 + 1, KC - 1),
        ] {
            let a = Matrix::from_fn(m, k, |i, j| ((3 * i + 5 * j) % 11) as f64 - 4.0);
            let b = Matrix::from_fn(k, n, |i, j| ((2 * i + 7 * j) % 13) as f64 - 6.0);
            let mut want = Matrix::zeros(m, n);
            gemm_scalar(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut want);
            let mut got = Matrix::zeros(m, n);
            run_core::<NR_AVX2>(micro_kernel_avx2_entry, &a, &b, &mut got);
            for (i, j, v) in got.iter_indexed() {
                assert!(
                    (v - want.get(i, j)).abs() < 1e-10,
                    "({m},{n},{k}) at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn workspace_reuse_is_consistent() {
        let mut ws = GemmWorkspace::new();
        let a = Matrix::from_fn(40, 50, |i, j| (i as f64 - j as f64) * 0.25);
        let b = Matrix::from_fn(50, 30, |i, j| ((i * j) % 9) as f64 - 4.0);
        let mut c1 = Matrix::zeros(40, 30);
        gemm_with(
            &mut ws,
            1.0,
            &a,
            Transpose::No,
            &b,
            Transpose::No,
            0.0,
            &mut c1,
        );
        let bytes_after_first = ws.capacity_bytes();
        let mut c2 = Matrix::zeros(40, 30);
        gemm_with(
            &mut ws,
            1.0,
            &a,
            Transpose::No,
            &b,
            Transpose::No,
            0.0,
            &mut c2,
        );
        assert_eq!(c1, c2);
        assert_eq!(
            ws.capacity_bytes(),
            bytes_after_first,
            "no regrowth on reuse"
        );
        assert!(bytes_after_first > 0);
    }

    #[test]
    fn empty_extents_are_noops() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        let mut c = Matrix::zeros(0, 3);
        gemm_blocked(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);

        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::from_fn(3, 2, |_, _| 7.0);
        gemm_blocked(1.0, &a, Transpose::No, &b, Transpose::No, 0.5, &mut c);
        // k = 0: only the beta scaling applies.
        assert!(c.as_slice().iter().all(|&v| v == 3.5));
    }
}
