use crate::matrix::{Matrix, Transpose};

/// General matrix-matrix multiply: `C := alpha * op(A) * op(B) + beta * C`.
///
/// This is the workhorse kernel (BLAS `GEMM`). The loop order is chosen so
/// the innermost loop walks contiguous columns of `C` and `A`, which keeps
/// the kernel cache-friendly for column-major storage.
///
/// # Panics
///
/// Panics if the operand dimensions are inconsistent.
///
/// # Example
///
/// ```
/// use gmc_linalg::{gemm, Matrix, Transpose};
/// let a = Matrix::identity(3);
/// let b = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
/// let mut c = Matrix::zeros(3, 2);
/// gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
/// assert_eq!(c, b);
/// ```
pub fn gemm(
    alpha: f64,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, ka) = dims(a, ta);
    let (kb, n) = dims(b, tb);
    assert_eq!(ka, kb, "gemm: inner dimensions differ ({ka} vs {kb})");
    assert_eq!(c.rows(), m, "gemm: C has wrong row count");
    assert_eq!(c.cols(), n, "gemm: C has wrong column count");
    let k = ka;

    if beta != 1.0 {
        for v in c.as_mut_slice() {
            *v *= beta;
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }

    match (ta, tb) {
        (Transpose::No, Transpose::No) => {
            // Panel-of-four update: C(:, j..j+4) += alpha * A(:, p) *
            // B(p, j..j+4). Reusing A's column across four columns of C
            // quarters the traffic on A compared with a per-column axpy.
            let adata = a.as_slice();
            let mut j = 0;
            while j + 4 <= n {
                for p in 0..k {
                    let b0 = alpha * b.get(p, j);
                    let b1 = alpha * b.get(p, j + 1);
                    let b2 = alpha * b.get(p, j + 2);
                    let b3 = alpha * b.get(p, j + 3);
                    if b0 == 0.0 && b1 == 0.0 && b2 == 0.0 && b3 == 0.0 {
                        continue;
                    }
                    let acol = &adata[p * m..(p + 1) * m];
                    let cd = c.as_mut_slice();
                    let base = j * m;
                    for (i, &av) in acol.iter().enumerate() {
                        cd[base + i] += av * b0;
                        cd[base + m + i] += av * b1;
                        cd[base + 2 * m + i] += av * b2;
                        cd[base + 3 * m + i] += av * b3;
                    }
                }
                j += 4;
            }
            // Remainder columns.
            while j < n {
                for p in 0..k {
                    let bpj = alpha * b.get(p, j);
                    if bpj == 0.0 {
                        continue;
                    }
                    let acol = a.col(p);
                    let ccol = c.col_mut(j);
                    for i in 0..m {
                        ccol[i] += acol[i] * bpj;
                    }
                }
                j += 1;
            }
        }
        (Transpose::Yes, Transpose::No) => {
            // C(i,j) += alpha * dot(A(:,i), B(:,j)).
            for j in 0..n {
                let bcol = b.col(j);
                for i in 0..m {
                    let acol = a.col(i);
                    let mut s = 0.0;
                    for p in 0..k {
                        s += acol[p] * bcol[p];
                    }
                    let v = c.get(i, j) + alpha * s;
                    c.set(i, j, v);
                }
            }
        }
        (Transpose::No, Transpose::Yes) => {
            // C(:,j) += alpha * A(:,p) * B(j,p).
            for j in 0..n {
                for p in 0..k {
                    let bjp = alpha * b.get(j, p);
                    if bjp == 0.0 {
                        continue;
                    }
                    let acol = a.col(p);
                    let ccol = c.col_mut(j);
                    for i in 0..m {
                        ccol[i] += acol[i] * bjp;
                    }
                }
            }
        }
        (Transpose::Yes, Transpose::Yes) => {
            for j in 0..n {
                for i in 0..m {
                    let acol = a.col(i);
                    let mut s = 0.0;
                    for p in 0..k {
                        s += acol[p] * b.get(j, p);
                    }
                    let v = c.get(i, j) + alpha * s;
                    c.set(i, j, v);
                }
            }
        }
    }
}

/// Convenience wrapper computing `op(A) * op(B)` into a fresh matrix.
#[must_use]
pub fn matmul(a: &Matrix, ta: Transpose, b: &Matrix, tb: Transpose) -> Matrix {
    let (m, _) = dims(a, ta);
    let (_, n) = dims(b, tb);
    let mut c = Matrix::zeros(m, n);
    gemm(1.0, a, ta, b, tb, 0.0, &mut c);
    c
}

fn dims(x: &Matrix, t: Transpose) -> (usize, usize) {
    match t {
        Transpose::No => (x.rows(), x.cols()),
        Transpose::Yes => (x.cols(), x.rows()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for p in 0..a.cols() {
                    s += a.get(i, p) * b.get(p, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn matches_naive_multiply() {
        let a = Matrix::from_fn(4, 6, |i, j| (i as f64) - 0.5 * (j as f64));
        let b = Matrix::from_fn(6, 3, |i, j| 1.0 / (1.0 + i as f64 + j as f64));
        let c = matmul(&a, Transpose::No, &b, Transpose::No);
        let expect = naive(&a, &b);
        for (i, j, v) in c.iter_indexed() {
            assert!((v - expect.get(i, j)).abs() < 1e-12);
        }
    }

    #[test]
    fn all_transpose_combinations_agree() {
        let a = Matrix::from_fn(5, 4, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let b = Matrix::from_fn(4, 6, |i, j| ((i + 2 * j) % 7) as f64 - 3.0);
        let reference = matmul(&a, Transpose::No, &b, Transpose::No);

        let at = a.transposed();
        let bt = b.transposed();
        for (x, tx) in [(&a, Transpose::No), (&at, Transpose::Yes)] {
            for (y, ty) in [(&b, Transpose::No), (&bt, Transpose::Yes)] {
                let c = matmul(x, tx, y, ty);
                assert_eq!(c.rows(), reference.rows());
                assert_eq!(c.cols(), reference.cols());
                for (i, j, v) in c.iter_indexed() {
                    assert!((v - reference.get(i, j)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = Matrix::identity(2);
        let b = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let mut c = Matrix::from_fn(2, 2, |_, _| 10.0);
        gemm(2.0, &a, Transpose::No, &b, Transpose::No, 0.5, &mut c);
        // C = 2 * B + 0.5 * 10
        assert_eq!(c.get(0, 0), 5.0);
        assert_eq!(c.get(1, 1), 11.0);
    }

    #[test]
    fn zero_alpha_only_scales_c() {
        let a = Matrix::from_fn(2, 2, |_, _| f64::NAN);
        let b = Matrix::identity(2);
        let mut c = Matrix::from_fn(2, 2, |_, _| 4.0);
        gemm(0.0, &a, Transpose::No, &b, Transpose::No, 0.25, &mut c);
        assert!(c.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, Transpose::No, &b, Transpose::No);
    }

    #[test]
    fn identity_is_neutral() {
        let b = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let c = matmul(&Matrix::identity(3), Transpose::No, &b, Transpose::No);
        assert_eq!(c, b);
    }
}
