use std::fmt;
use std::ops::{Add, Sub};

/// Whether an operand participates in an operation transposed.
///
/// Mirrors the `op(X) = X, X^T` notation of BLAS and of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Transpose {
    /// Use the operand as stored.
    #[default]
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Transpose {
    /// Flip the transposition flag.
    #[must_use]
    pub fn toggled(self) -> Self {
        match self {
            Transpose::No => Transpose::Yes,
            Transpose::Yes => Transpose::No,
        }
    }

    /// `true` if the operand is transposed.
    #[must_use]
    pub fn is_trans(self) -> bool {
        matches!(self, Transpose::Yes)
    }
}

/// Which triangle of a matrix carries data (for triangular kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Triangle {
    /// Lower-triangular.
    Lower,
    /// Upper-triangular.
    Upper,
}

impl Triangle {
    /// The triangle obtained by transposing a matrix with this triangle.
    #[must_use]
    pub fn transposed(self) -> Self {
        match self {
            Triangle::Lower => Triangle::Upper,
            Triangle::Upper => Triangle::Lower,
        }
    }
}

/// A dense, column-major, `f64` matrix.
///
/// Storage is column-major to match BLAS conventions: element `(i, j)` lives
/// at `data[i + j * rows]`.
///
/// # Example
///
/// ```
/// use gmc_linalg::Matrix;
/// let m = Matrix::from_fn(2, 2, |i, j| if i == j { 1.0 } else { 0.0 });
/// assert!(m.is_identity(1e-15));
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n`-by-`n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Create a matrix from a generator function `f(i, j)`.
    #[must_use]
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Create a matrix from a row-major slice of `rows * cols` elements.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols`.
    #[must_use]
    pub fn from_rows(rows: usize, cols: usize, values: &[f64]) -> Self {
        assert_eq!(values.len(), rows * cols, "wrong number of elements");
        Matrix::from_fn(rows, cols, |i, j| values[i * cols + j])
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows]
    }

    /// Set element `(i, j)` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows] = v;
    }

    /// Raw column-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw column-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow column `j` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    #[must_use]
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable borrow of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copy of row `i` (rows are strided in column-major storage).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn row(&self, i: usize) -> Vec<f64> {
        assert!(i < self.rows);
        (0..self.cols).map(|j| self.get(i, j)).collect()
    }

    /// The explicit transpose.
    #[must_use]
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Scale every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// `true` if the matrix is the identity to within `tol`.
    #[must_use]
    pub fn is_identity(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        self.iter_indexed()
            .all(|(i, j, v)| (v - if i == j { 1.0 } else { 0.0 }).abs() <= tol)
    }

    /// `true` if symmetric to within `tol`.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.is_square()
            && self
                .iter_indexed()
                .all(|(i, j, v)| (v - self.get(j, i)).abs() <= tol)
    }

    /// `true` if (numerically) lower-triangular to within `tol`.
    #[must_use]
    pub fn is_lower_triangular(&self, tol: f64) -> bool {
        self.iter_indexed()
            .all(|(i, j, v)| j <= i || v.abs() <= tol)
    }

    /// `true` if (numerically) upper-triangular to within `tol`.
    #[must_use]
    pub fn is_upper_triangular(&self, tol: f64) -> bool {
        self.iter_indexed()
            .all(|(i, j, v)| i <= j || v.abs() <= tol)
    }

    /// Iterate over `(i, j, value)` triples in column-major order.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.cols).flat_map(move |j| (0..self.rows).map(move |i| (i, j, self.get(i, j))))
    }

    /// Zero out the strictly-upper or strictly-lower triangle, making the
    /// matrix exactly triangular.
    pub fn force_triangle(&mut self, tri: Triangle) {
        for j in 0..self.cols {
            for i in 0..self.rows {
                let kill = match tri {
                    Triangle::Lower => j > i,
                    Triangle::Upper => i > j,
                };
                if kill {
                    self.set(i, j, 0.0);
                }
            }
        }
    }

    /// Symmetrize in place: `A <- (A + A^T) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for j in 0..self.cols {
            for i in 0..j {
                let v = 0.5 * (self.get(i, j) + self.get(j, i));
                self.set(i, j, v);
                self.set(j, i, v);
            }
        }
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(&rhs.data) {
            *o += r;
        }
        out
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(&rhs.data) {
            *o -= r;
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        let show_cols = self.cols.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..show_cols {
                write!(f, "{:10.4} ", self.get(i, j))?;
            }
            if show_cols < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_rows < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 4);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let id = Matrix::identity(5);
        assert!(id.is_identity(0.0));
        assert!(id.is_symmetric(0.0));
        assert!(id.is_lower_triangular(0.0));
        assert!(id.is_upper_triangular(0.0));
    }

    #[test]
    fn from_rows_is_row_major() {
        let m = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "wrong number of elements")]
    fn from_rows_validates_length() {
        let _ = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        let t = m.transposed();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn column_access_is_contiguous() {
        let m = Matrix::from_fn(4, 2, |i, j| (i + 100 * j) as f64);
        assert_eq!(m.col(1), &[100.0, 101.0, 102.0, 103.0]);
        assert_eq!(m.row(2), vec![2.0, 102.0]);
    }

    #[test]
    fn triangle_predicates() {
        let mut m = Matrix::from_fn(3, 3, |_, _| 1.0);
        assert!(!m.is_lower_triangular(0.0));
        m.force_triangle(Triangle::Lower);
        assert!(m.is_lower_triangular(0.0));
        assert!(!m.is_upper_triangular(0.0));
        let mut u = Matrix::from_fn(3, 3, |_, _| 1.0);
        u.force_triangle(Triangle::Upper);
        assert!(u.is_upper_triangular(0.0));
    }

    #[test]
    fn symmetrize_makes_symmetric() {
        let mut m = Matrix::from_fn(4, 4, |i, j| (3 * i + j) as f64);
        assert!(!m.is_symmetric(1e-12));
        m.symmetrize();
        assert!(m.is_symmetric(1e-12));
    }

    #[test]
    fn add_sub_elementwise() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::identity(2);
        let c = &a + &b;
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(1, 1), 3.0);
        let d = &c - &b;
        assert_eq!(d, a);
    }

    #[test]
    fn transpose_flags() {
        assert_eq!(Transpose::No.toggled(), Transpose::Yes);
        assert_eq!(Transpose::Yes.toggled(), Transpose::No);
        assert!(Transpose::Yes.is_trans());
        assert!(!Transpose::No.is_trans());
        assert_eq!(Triangle::Lower.transposed(), Triangle::Upper);
        assert_eq!(Triangle::Upper.transposed(), Triangle::Lower);
    }

    #[test]
    fn debug_is_nonempty_and_truncates() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains("..."));
    }
}
