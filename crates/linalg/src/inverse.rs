use crate::chol::cholesky;
use crate::lu::{getrs, lu_factor};
use crate::matrix::{Matrix, Transpose, Triangle};
use crate::symm::Side;
use crate::tri::trsm;
use crate::Result;

/// Explicitly invert a general nonsingular matrix via LU (LAPACK
/// `GETRF` + `GETRI`).
///
/// Explicit inversion is numerically inferior to solving linear systems — the
/// compiler only emits it when an inversion propagates to the end result — but
/// the capability must exist.
///
/// # Errors
///
/// Propagates factorization errors (singular or non-square input).
pub fn inverse_general(a: &Matrix) -> Result<Matrix> {
    let f = lu_factor(a)?;
    let mut x = Matrix::identity(a.rows());
    getrs(&f, Transpose::No, Side::Left, &mut x);
    Ok(x)
}

/// Explicitly invert a symmetric positive-definite matrix via Cholesky
/// (LAPACK `POTRF` + `POTRI`).
///
/// # Errors
///
/// Propagates factorization errors (not positive definite or non-square).
pub fn inverse_spd(a: &Matrix) -> Result<Matrix> {
    let f = cholesky(a)?;
    let mut x = Matrix::identity(a.rows());
    // A^{-1} = L^{-T} L^{-1}.
    trsm(
        Side::Left,
        Triangle::Lower,
        Transpose::No,
        1.0,
        f.l(),
        &mut x,
    );
    trsm(
        Side::Left,
        Triangle::Lower,
        Transpose::Yes,
        1.0,
        f.l(),
        &mut x,
    );
    Ok(x)
}

/// Explicitly invert a nonsingular triangular matrix (LAPACK `TRTRI`).
///
/// The result is triangular with the same triangularity.
///
/// # Panics
///
/// Panics if `a` is not square or has an exactly-zero diagonal entry.
#[must_use]
pub fn inverse_triangular(a: &Matrix, tri: Triangle) -> Matrix {
    let mut x = Matrix::identity(a.rows());
    trsm(Side::Left, tri, Transpose::No, 1.0, a, &mut x);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    #[test]
    fn general_inverse() {
        let a = Matrix::from_fn(5, 5, |i, j| {
            if i == j {
                6.0
            } else {
                ((i * 3 + j) % 4) as f64 - 1.5
            }
        });
        let inv = inverse_general(&a).unwrap();
        let prod = matmul(&a, Transpose::No, &inv, Transpose::No);
        assert!(prod.is_identity(1e-10));
    }

    #[test]
    fn spd_inverse() {
        let b = Matrix::from_fn(4, 4, |i, j| ((i + 2 * j) % 5) as f64 - 2.0);
        let mut a = matmul(&b, Transpose::No, &b, Transpose::Yes);
        for i in 0..4 {
            let v = a.get(i, i) + 4.0;
            a.set(i, i, v);
        }
        let inv = inverse_spd(&a).unwrap();
        let prod = matmul(&a, Transpose::No, &inv, Transpose::No);
        assert!(prod.is_identity(1e-10));
        assert!(inv.is_symmetric(1e-10));
    }

    #[test]
    fn triangular_inverse_preserves_structure() {
        let mut a = Matrix::from_fn(5, 5, |i, j| 0.3 * (i as f64) + 0.1 * (j as f64) + 0.2);
        a.force_triangle(Triangle::Lower);
        for i in 0..5 {
            a.set(i, i, 2.0);
        }
        let inv = inverse_triangular(&a, Triangle::Lower);
        assert!(inv.is_lower_triangular(1e-13));
        let prod = matmul(&a, Transpose::No, &inv, Transpose::No);
        assert!(prod.is_identity(1e-12));
    }

    #[test]
    fn singular_general_errors() {
        let a = Matrix::zeros(2, 2);
        assert!(inverse_general(&a).is_err());
    }
}
