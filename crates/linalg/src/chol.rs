use crate::matrix::{Matrix, Transpose, Triangle};
use crate::symm::Side;
use crate::tri::trsm;
use crate::{LinalgError, Result};

/// A Cholesky factorization `A = L * L^T` of a symmetric positive-definite
/// matrix (LAPACK `POTRF`, lower variant).
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    l: Matrix,
}

impl CholeskyFactor {
    /// The lower-triangular factor `L`.
    #[must_use]
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Consume the factorization and return `L`.
    #[must_use]
    pub fn into_l(self) -> Matrix {
        self.l
    }
}

/// Compute the lower Cholesky factor of a symmetric positive-definite matrix.
///
/// Only the lower triangle of `a` is referenced.
///
/// # Errors
///
/// Returns [`LinalgError::NotPositiveDefinite`] if a non-positive pivot is
/// encountered, and [`LinalgError::DimensionMismatch`] if `a` is not square.
///
/// # Example
///
/// ```
/// use gmc_linalg::{cholesky, Matrix};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(2, 2, &[4.0, 2.0, 2.0, 5.0]);
/// let f = cholesky(&a)?;
/// assert!((f.l().get(0, 0) - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn cholesky(a: &Matrix) -> Result<CholeskyFactor> {
    if !a.is_square() {
        return Err(LinalgError::DimensionMismatch(format!(
            "cholesky requires a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut d = a.get(j, j);
        for k in 0..j {
            let v = l.get(j, k);
            d -= v * v;
        }
        if d <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite(j));
        }
        let djj = d.sqrt();
        l.set(j, j, djj);
        for i in j + 1..n {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            l.set(i, j, s / djj);
        }
    }
    Ok(CholeskyFactor { l })
}

/// Solve `A X = B` (left) or `X A = B` (right) for SPD `A` given its
/// Cholesky factor, overwriting `B` (LAPACK `POTRS`, extended with a
/// right-side variant).
///
/// # Panics
///
/// Panics if the dimensions of `B` are incompatible.
pub fn potrs(f: &CholeskyFactor, side: Side, b: &mut Matrix) {
    match side {
        Side::Left => {
            // L L^T X = B.
            trsm(Side::Left, Triangle::Lower, Transpose::No, 1.0, &f.l, b);
            trsm(Side::Left, Triangle::Lower, Transpose::Yes, 1.0, &f.l, b);
        }
        Side::Right => {
            // X L L^T = B.
            trsm(Side::Right, Triangle::Lower, Transpose::Yes, 1.0, &f.l, b);
            trsm(Side::Right, Triangle::Lower, Transpose::No, 1.0, &f.l, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms::relative_error;

    fn spd(n: usize) -> Matrix {
        // A = B B^T + n*I is SPD.
        let b = Matrix::from_fn(n, n, |i, j| (((i * 13 + j * 7) % 9) as f64 - 4.0) / 3.0);
        let mut a = matmul(&b, Transpose::No, &b, Transpose::Yes);
        for i in 0..n {
            let v = a.get(i, i) + n as f64;
            a.set(i, i, v);
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd(6);
        let f = cholesky(&a).unwrap();
        let llt = matmul(f.l(), Transpose::No, f.l(), Transpose::Yes);
        assert!(relative_error(&llt, &a) < 1e-12);
        assert!(f.l().is_lower_triangular(0.0));
    }

    #[test]
    fn solve_left_and_right() {
        let a = spd(5);
        let f = cholesky(&a).unwrap();

        let x = Matrix::from_fn(5, 2, |i, j| (i + 3 * j) as f64 * 0.2 - 1.0);
        let mut b = matmul(&a, Transpose::No, &x, Transpose::No);
        potrs(&f, Side::Left, &mut b);
        assert!(relative_error(&b, &x) < 1e-10);

        let y = Matrix::from_fn(3, 5, |i, j| (2 * i + j) as f64 * 0.1);
        let mut c = matmul(&y, Transpose::No, &a, Transpose::No);
        potrs(&f, Side::Right, &mut c);
        assert!(relative_error(&c, &y) < 1e-10);
    }

    #[test]
    fn indefinite_rejected() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite(_))
        ));
    }

    #[test]
    fn non_square_rejected() {
        assert!(matches!(
            cholesky(&Matrix::zeros(2, 3)),
            Err(LinalgError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn ignores_upper_triangle() {
        let mut a = spd(4);
        // Poison strictly-upper entries; factorization must not read them.
        for j in 0..4 {
            for i in 0..j {
                a.set(i, j, f64::NAN);
            }
        }
        let f = cholesky(&a).unwrap();
        assert!(f.l().as_slice().iter().all(|v| v.is_finite()));
    }
}
