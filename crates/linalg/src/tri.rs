use crate::matrix::{Matrix, Transpose, Triangle};
use crate::symm::Side;

/// Triangular matrix-matrix multiply (BLAS `TRMM`):
/// `B := alpha * op(A) * B` (left) or `B := alpha * B * op(A)` (right),
/// where `A` is triangular.
///
/// Only the triangle of `A` named by `tri` is referenced; `tri` describes the
/// *stored* triangle, before `op` is applied.
///
/// # Panics
///
/// Panics if `A` is not square or sizes are incompatible.
///
/// # Example
///
/// ```
/// use gmc_linalg::{trmm, Matrix, Side, Transpose, Triangle};
/// let a = Matrix::from_rows(2, 2, &[2.0, 0.0, 1.0, 3.0]); // lower
/// let mut b = Matrix::identity(2);
/// trmm(Side::Left, Triangle::Lower, Transpose::No, 1.0, &a, &mut b);
/// assert_eq!(b.get(1, 0), 1.0);
/// ```
pub fn trmm(side: Side, tri: Triangle, ta: Transpose, alpha: f64, a: &Matrix, b: &mut Matrix) {
    assert!(a.is_square(), "trmm: A must be square");
    let n = a.rows();
    match side {
        Side::Left => assert_eq!(b.rows(), n, "trmm: size mismatch"),
        Side::Right => assert_eq!(b.cols(), n, "trmm: size mismatch"),
    }
    // Effective triangle after transposition.
    let eff = match ta {
        Transpose::No => tri,
        Transpose::Yes => tri.transposed(),
    };
    let at = |i: usize, j: usize| -> f64 {
        let v = match ta {
            Transpose::No => a.get(i, j),
            Transpose::Yes => a.get(j, i),
        };
        // Reference only the stored triangle.
        let stored = match eff {
            Triangle::Lower => j <= i,
            Triangle::Upper => i <= j,
        };
        if stored {
            v
        } else {
            0.0
        }
    };

    match side {
        Side::Left => {
            // B := alpha * T * B, processed per column of B.
            for jc in 0..b.cols() {
                let col: Vec<f64> = b.col(jc).to_vec();
                let out = b.col_mut(jc);
                match eff {
                    Triangle::Lower => {
                        for i in (0..n).rev() {
                            let mut s = 0.0;
                            for j in 0..=i {
                                s += at(i, j) * col[j];
                            }
                            out[i] = alpha * s;
                        }
                    }
                    Triangle::Upper => {
                        for i in 0..n {
                            let mut s = 0.0;
                            for j in i..n {
                                s += at(i, j) * col[j];
                            }
                            out[i] = alpha * s;
                        }
                    }
                }
            }
        }
        Side::Right => {
            // B := alpha * B * T, processed per row of B.
            let rows = b.rows();
            for ir in 0..rows {
                let row: Vec<f64> = (0..n).map(|j| b.get(ir, j)).collect();
                for jc in 0..n {
                    let mut s = 0.0;
                    match eff {
                        Triangle::Lower => {
                            for p in jc..n {
                                s += row[p] * at(p, jc);
                            }
                        }
                        Triangle::Upper => {
                            for p in 0..=jc {
                                s += row[p] * at(p, jc);
                            }
                        }
                    }
                    b.set(ir, jc, alpha * s);
                }
            }
        }
    }
}

/// Triangular solve with multiple right-hand sides (BLAS `TRSM`):
/// solves `op(A) * X = alpha * B` (left) or `X * op(A) = alpha * B` (right)
/// for `X`, overwriting `B`.
///
/// # Panics
///
/// Panics if `A` is not square, sizes are incompatible, or a diagonal entry
/// of `A` is exactly zero.
///
/// # Example
///
/// ```
/// use gmc_linalg::{trsm, trmm, Matrix, Side, Transpose, Triangle};
/// let a = Matrix::from_rows(2, 2, &[2.0, 0.0, 1.0, 4.0]);
/// let mut x = Matrix::from_rows(2, 1, &[2.0, 5.0]);
/// trsm(Side::Left, Triangle::Lower, Transpose::No, 1.0, &a, &mut x);
/// // verify A * x = b
/// assert!((2.0 * x.get(0, 0) - 2.0).abs() < 1e-12);
/// assert!((x.get(0, 0) + 4.0 * x.get(1, 0) - 5.0).abs() < 1e-12);
/// ```
pub fn trsm(side: Side, tri: Triangle, ta: Transpose, alpha: f64, a: &Matrix, b: &mut Matrix) {
    assert!(a.is_square(), "trsm: A must be square");
    let n = a.rows();
    match side {
        Side::Left => assert_eq!(b.rows(), n, "trsm: size mismatch"),
        Side::Right => assert_eq!(b.cols(), n, "trsm: size mismatch"),
    }
    let eff = match ta {
        Transpose::No => tri,
        Transpose::Yes => tri.transposed(),
    };
    let at = |i: usize, j: usize| -> f64 {
        match ta {
            Transpose::No => a.get(i, j),
            Transpose::Yes => a.get(j, i),
        }
    };

    if alpha != 1.0 {
        b.scale(alpha);
    }

    match side {
        Side::Left => {
            for jc in 0..b.cols() {
                match eff {
                    Triangle::Lower => {
                        // Forward substitution.
                        for i in 0..n {
                            let mut s = b.get(i, jc);
                            for j in 0..i {
                                s -= at(i, j) * b.get(j, jc);
                            }
                            let d = at(i, i);
                            assert!(d != 0.0, "trsm: zero diagonal at {i}");
                            b.set(i, jc, s / d);
                        }
                    }
                    Triangle::Upper => {
                        // Back substitution.
                        for i in (0..n).rev() {
                            let mut s = b.get(i, jc);
                            for j in i + 1..n {
                                s -= at(i, j) * b.get(j, jc);
                            }
                            let d = at(i, i);
                            assert!(d != 0.0, "trsm: zero diagonal at {i}");
                            b.set(i, jc, s / d);
                        }
                    }
                }
            }
        }
        Side::Right => {
            // X * T = B  <=>  T^T * X^T = B^T; solve row-wise.
            let rows = b.rows();
            for ir in 0..rows {
                match eff {
                    Triangle::Lower => {
                        // x * L = b: process columns right-to-left.
                        for j in (0..n).rev() {
                            let mut s = b.get(ir, j);
                            for p in j + 1..n {
                                s -= b.get(ir, p) * at(p, j);
                            }
                            let d = at(j, j);
                            assert!(d != 0.0, "trsm: zero diagonal at {j}");
                            b.set(ir, j, s / d);
                        }
                    }
                    Triangle::Upper => {
                        // x * U = b: process columns left-to-right.
                        for j in 0..n {
                            let mut s = b.get(ir, j);
                            for p in 0..j {
                                s -= b.get(ir, p) * at(p, j);
                            }
                            let d = at(j, j);
                            assert!(d != 0.0, "trsm: zero diagonal at {j}");
                            b.set(ir, j, s / d);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms::relative_error;

    fn lower(n: usize) -> Matrix {
        let mut a = Matrix::from_fn(n, n, |i, j| 1.0 + (i * n + j) as f64 * 0.1);
        a.force_triangle(Triangle::Lower);
        for i in 0..n {
            a.set(i, i, 2.0 + i as f64); // well-conditioned diagonal
        }
        a
    }

    fn upper(n: usize) -> Matrix {
        lower(n).transposed()
    }

    #[test]
    fn trmm_left_matches_gemm() {
        let a = lower(5);
        let b = Matrix::from_fn(5, 3, |i, j| (i + 2 * j) as f64 - 4.0);
        let mut got = b.clone();
        trmm(
            Side::Left,
            Triangle::Lower,
            Transpose::No,
            1.0,
            &a,
            &mut got,
        );
        let want = matmul(&a, Transpose::No, &b, Transpose::No);
        assert!(relative_error(&got, &want) < 1e-13);
    }

    #[test]
    fn trmm_right_matches_gemm() {
        let a = upper(4);
        let b = Matrix::from_fn(3, 4, |i, j| 1.0 / (1.0 + (i + j) as f64));
        let mut got = b.clone();
        trmm(
            Side::Right,
            Triangle::Upper,
            Transpose::No,
            1.0,
            &a,
            &mut got,
        );
        let want = matmul(&b, Transpose::No, &a, Transpose::No);
        assert!(relative_error(&got, &want) < 1e-13);
    }

    #[test]
    fn trmm_transposed_matches_gemm() {
        let a = lower(6);
        let b = Matrix::from_fn(6, 2, |i, j| ((i * 3 + j) % 5) as f64);
        let mut got = b.clone();
        trmm(
            Side::Left,
            Triangle::Lower,
            Transpose::Yes,
            2.0,
            &a,
            &mut got,
        );
        let mut want = matmul(&a, Transpose::Yes, &b, Transpose::No);
        want.scale(2.0);
        assert!(relative_error(&got, &want) < 1e-13);
    }

    #[test]
    fn trmm_ignores_garbage_in_dead_triangle() {
        // Fill the strictly-upper triangle with NaN; TRMM must not read it.
        let mut a = lower(4);
        for j in 0..4 {
            for i in 0..j {
                a.set(i, j, f64::NAN);
            }
        }
        let b = Matrix::identity(4);
        let mut got = b.clone();
        trmm(
            Side::Left,
            Triangle::Lower,
            Transpose::No,
            1.0,
            &a,
            &mut got,
        );
        assert!(got.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn trsm_left_round_trips_with_trmm() {
        for (tri, ta) in [
            (Triangle::Lower, Transpose::No),
            (Triangle::Lower, Transpose::Yes),
            (Triangle::Upper, Transpose::No),
            (Triangle::Upper, Transpose::Yes),
        ] {
            let a = match tri {
                Triangle::Lower => lower(5),
                Triangle::Upper => upper(5),
            };
            let x = Matrix::from_fn(5, 3, |i, j| (i as f64 - j as f64) * 0.3 + 1.0);
            let mut b = x.clone();
            trmm(Side::Left, tri, ta, 1.0, &a, &mut b);
            trsm(Side::Left, tri, ta, 1.0, &a, &mut b);
            assert!(relative_error(&b, &x) < 1e-11, "{tri:?} {ta:?}");
        }
    }

    #[test]
    fn trsm_right_round_trips_with_trmm() {
        for (tri, ta) in [
            (Triangle::Lower, Transpose::No),
            (Triangle::Lower, Transpose::Yes),
            (Triangle::Upper, Transpose::No),
            (Triangle::Upper, Transpose::Yes),
        ] {
            let a = match tri {
                Triangle::Lower => lower(4),
                Triangle::Upper => upper(4),
            };
            let x = Matrix::from_fn(3, 4, |i, j| ((2 * i + j) % 7) as f64 - 3.0);
            let mut b = x.clone();
            trmm(Side::Right, tri, ta, 1.0, &a, &mut b);
            trsm(Side::Right, tri, ta, 1.0, &a, &mut b);
            assert!(relative_error(&b, &x) < 1e-11, "{tri:?} {ta:?}");
        }
    }

    #[test]
    fn trsm_applies_alpha() {
        let a = Matrix::identity(3);
        let mut b = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let want = {
            let mut w = b.clone();
            w.scale(3.0);
            w
        };
        trsm(Side::Left, Triangle::Lower, Transpose::No, 3.0, &a, &mut b);
        assert_eq!(b, want);
    }
}
