//! Triangular multiply and solve (BLAS `TRMM` / `TRSM`).
//!
//! Both kernels are blocked for large operands: the triangular matrix is
//! partitioned into `TRI_NB`-wide diagonal blocks, the small triangular
//! work on each diagonal block runs the scalar reference loops, and every
//! large off-diagonal block update is routed through the packed blocked
//! GEMM core ([`crate::gemm`]), which is where almost all of the FLOPs
//! live (`1 - TRI_NB/n` of them). Below [`TRI_BLOCK_MIN`] the original
//! scalar kernels run unchanged.

use crate::matrix::{Matrix, Transpose, Triangle};
use crate::symm::Side;
use std::cell::RefCell;

/// Diagonal block size of the blocked triangular kernels.
const TRI_NB: usize = 64;
/// Minimum triangular dimension for the blocked path.
const TRI_BLOCK_MIN: usize = 96;

thread_local! {
    /// Gather/scatter buffer for the left-side blocked kernels (disjoint
    /// from the GEMM packing workspace, which is borrowed re-entrantly).
    static TRI_BUF: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Triangular matrix-matrix multiply (BLAS `TRMM`):
/// `B := alpha * op(A) * B` (left) or `B := alpha * B * op(A)` (right),
/// where `A` is triangular.
///
/// Only the triangle of `A` named by `tri` is referenced; `tri` describes the
/// *stored* triangle, before `op` is applied.
///
/// # Panics
///
/// Panics if `A` is not square or sizes are incompatible.
///
/// # Example
///
/// ```
/// use gmc_linalg::{trmm, Matrix, Side, Transpose, Triangle};
/// let a = Matrix::from_rows(2, 2, &[2.0, 0.0, 1.0, 3.0]); // lower
/// let mut b = Matrix::identity(2);
/// trmm(Side::Left, Triangle::Lower, Transpose::No, 1.0, &a, &mut b);
/// assert_eq!(b.get(1, 0), 1.0);
/// ```
pub fn trmm(side: Side, tri: Triangle, ta: Transpose, alpha: f64, a: &Matrix, b: &mut Matrix) {
    assert!(a.is_square(), "trmm: A must be square");
    let n = a.rows();
    match side {
        Side::Left => assert_eq!(b.rows(), n, "trmm: size mismatch"),
        Side::Right => assert_eq!(b.cols(), n, "trmm: size mismatch"),
    }
    if n < TRI_BLOCK_MIN {
        trmm_scalar(side, tri, ta, alpha, a, b);
        return;
    }
    if alpha != 1.0 {
        b.scale(alpha);
    }
    if alpha == 0.0 {
        return;
    }
    let eff = match ta {
        Transpose::No => tri,
        Transpose::Yes => tri.transposed(),
    };
    let (trs, tcs) = crate::gemm::op_strides(a, ta);
    match side {
        Side::Left => trmm_blocked_left(eff, a.as_slice(), trs, tcs, n, b),
        Side::Right => trmm_blocked_right(eff, a.as_slice(), trs, tcs, n, b),
    }
}

/// Triangular solve with multiple right-hand sides (BLAS `TRSM`):
/// solves `op(A) * X = alpha * B` (left) or `X * op(A) = alpha * B` (right)
/// for `X`, overwriting `B`.
///
/// # Panics
///
/// Panics if `A` is not square, sizes are incompatible, or a diagonal entry
/// of `A` is exactly zero.
///
/// # Example
///
/// ```
/// use gmc_linalg::{trsm, trmm, Matrix, Side, Transpose, Triangle};
/// let a = Matrix::from_rows(2, 2, &[2.0, 0.0, 1.0, 4.0]);
/// let mut x = Matrix::from_rows(2, 1, &[2.0, 5.0]);
/// trsm(Side::Left, Triangle::Lower, Transpose::No, 1.0, &a, &mut x);
/// // verify A * x = b
/// assert!((2.0 * x.get(0, 0) - 2.0).abs() < 1e-12);
/// assert!((x.get(0, 0) + 4.0 * x.get(1, 0) - 5.0).abs() < 1e-12);
/// ```
pub fn trsm(side: Side, tri: Triangle, ta: Transpose, alpha: f64, a: &Matrix, b: &mut Matrix) {
    assert!(a.is_square(), "trsm: A must be square");
    let n = a.rows();
    match side {
        Side::Left => assert_eq!(b.rows(), n, "trsm: size mismatch"),
        Side::Right => assert_eq!(b.cols(), n, "trsm: size mismatch"),
    }
    if n < TRI_BLOCK_MIN {
        trsm_scalar(side, tri, ta, alpha, a, b);
        return;
    }
    if alpha != 1.0 {
        b.scale(alpha);
    }
    let eff = match ta {
        Transpose::No => tri,
        Transpose::Yes => tri.transposed(),
    };
    let (trs, tcs) = crate::gemm::op_strides(a, ta);
    match side {
        Side::Left => trsm_blocked_left(eff, a.as_slice(), trs, tcs, n, b),
        Side::Right => trsm_blocked_right(eff, a.as_slice(), trs, tcs, n, b),
    }
}

/// `(start, end)` of diagonal block `ib`.
fn block_bounds(ib: usize, n: usize) -> (usize, usize) {
    let r0 = ib * TRI_NB;
    (r0, (r0 + TRI_NB).min(n))
}

fn with_buf<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    TRI_BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        f(&mut buf[..len])
    })
}

/// `B := op(T) * B` with `op(T)` effectively `eff`-triangular, blocked by
/// rows of B. The new value of row block `i` mixes the diagonal block with
/// the *unmodified* row blocks on the stored side, so `Lower` runs
/// bottom-up and `Upper` top-down; each block is computed into a scratch
/// buffer and scattered back, which keeps every GEMM operand borrow
/// disjoint.
fn trmm_blocked_left(eff: Triangle, t: &[f64], trs: usize, tcs: usize, n: usize, b: &mut Matrix) {
    let ldb = b.rows();
    let ncols = b.cols();
    let nblocks = n.div_ceil(TRI_NB);
    let order: Box<dyn Iterator<Item = usize>> = match eff {
        Triangle::Lower => Box::new((0..nblocks).rev()),
        Triangle::Upper => Box::new(0..nblocks),
    };
    for ib in order {
        let (r0, r1) = block_bounds(ib, n);
        let nb = r1 - r0;
        with_buf(nb * ncols, |out| {
            {
                let bs = b.as_slice();
                // Diagonal block, triangle-masked: out = T[d,d] * B[block].
                for c in 0..ncols {
                    let bcol = &bs[c * ldb..c * ldb + n];
                    for r in 0..nb {
                        let (qlo, qhi) = match eff {
                            Triangle::Lower => (0, r + 1),
                            Triangle::Upper => (r, nb),
                        };
                        let mut s = 0.0;
                        for q in qlo..qhi {
                            s += t[(r0 + r) * trs + (r0 + q) * tcs] * bcol[r0 + q];
                        }
                        out[r + c * nb] = s;
                    }
                }
                // Off-diagonal panel through the blocked GEMM core.
                match eff {
                    Triangle::Lower if r0 > 0 => crate::gemm::gemm_acc_strided(
                        1.0,
                        nb,
                        ncols,
                        r0,
                        &t[r0 * trs..],
                        trs,
                        tcs,
                        bs,
                        1,
                        ldb,
                        out,
                        nb,
                    ),
                    Triangle::Upper if r1 < n => crate::gemm::gemm_acc_strided(
                        1.0,
                        nb,
                        ncols,
                        n - r1,
                        &t[r0 * trs + r1 * tcs..],
                        trs,
                        tcs,
                        &bs[r1..],
                        1,
                        ldb,
                        out,
                        nb,
                    ),
                    _ => {}
                }
            }
            let bm = b.as_mut_slice();
            for c in 0..ncols {
                bm[c * ldb + r0..c * ldb + r1].copy_from_slice(&out[c * nb..c * nb + nb]);
            }
        });
    }
}

/// `B := B * op(T)`, blocked by columns of B. Column blocks of B are
/// contiguous in column-major storage, so the update runs fully in place:
/// the diagonal multiply consumes the block in dependency order, then the
/// off-diagonal GEMM accumulates from the untouched side via a split
/// borrow.
fn trmm_blocked_right(eff: Triangle, t: &[f64], trs: usize, tcs: usize, n: usize, b: &mut Matrix) {
    let ldb = b.rows();
    let m = b.rows();
    let nblocks = n.div_ceil(TRI_NB);
    let order: Box<dyn Iterator<Item = usize>> = match eff {
        Triangle::Lower => Box::new(0..nblocks),
        Triangle::Upper => Box::new((0..nblocks).rev()),
    };
    for jb in order {
        let (c0, c1) = block_bounds(jb, n);
        let nb = c1 - c0;
        match eff {
            Triangle::Lower => {
                // New block j uses T rows >= c0: the diagonal block and the
                // columns to the *right* of it (unmodified, ascending order).
                let (head, tail) = b.as_mut_slice().split_at_mut(c1 * ldb);
                let block = &mut head[c0 * ldb..];
                for r in 0..m {
                    for c in 0..nb {
                        let mut s = 0.0;
                        for q in c..nb {
                            s += block[r + q * ldb] * t[(c0 + q) * trs + (c0 + c) * tcs];
                        }
                        block[r + c * ldb] = s;
                    }
                }
                if c1 < n {
                    crate::gemm::gemm_acc_strided(
                        1.0,
                        m,
                        nb,
                        n - c1,
                        tail,
                        1,
                        ldb,
                        &t[c1 * trs + c0 * tcs..],
                        trs,
                        tcs,
                        block,
                        ldb,
                    );
                }
            }
            Triangle::Upper => {
                let (head, tail) = b.as_mut_slice().split_at_mut(c0 * ldb);
                let block = &mut tail[..nb * ldb];
                for r in 0..m {
                    for c in (0..nb).rev() {
                        let mut s = 0.0;
                        for q in 0..=c {
                            s += block[r + q * ldb] * t[(c0 + q) * trs + (c0 + c) * tcs];
                        }
                        block[r + c * ldb] = s;
                    }
                }
                if c0 > 0 {
                    crate::gemm::gemm_acc_strided(
                        1.0,
                        m,
                        nb,
                        c0,
                        head,
                        1,
                        ldb,
                        &t[c0 * tcs..],
                        trs,
                        tcs,
                        block,
                        ldb,
                    );
                }
            }
        }
    }
}

/// Solve `op(T) * X = B` in place, blocked by rows of B: subtract the
/// already-solved row blocks via the GEMM core, then run the scalar
/// substitution on the diagonal block.
fn trsm_blocked_left(eff: Triangle, t: &[f64], trs: usize, tcs: usize, n: usize, b: &mut Matrix) {
    let ldb = b.rows();
    let ncols = b.cols();
    let nblocks = n.div_ceil(TRI_NB);
    let order: Box<dyn Iterator<Item = usize>> = match eff {
        Triangle::Lower => Box::new(0..nblocks),
        Triangle::Upper => Box::new((0..nblocks).rev()),
    };
    for ib in order {
        let (r0, r1) = block_bounds(ib, n);
        let nb = r1 - r0;
        with_buf(nb * ncols, |out| {
            {
                let bs = b.as_slice();
                for c in 0..ncols {
                    out[c * nb..c * nb + nb].copy_from_slice(&bs[c * ldb + r0..c * ldb + r1]);
                }
                match eff {
                    Triangle::Lower if r0 > 0 => crate::gemm::gemm_acc_strided(
                        -1.0,
                        nb,
                        ncols,
                        r0,
                        &t[r0 * trs..],
                        trs,
                        tcs,
                        bs,
                        1,
                        ldb,
                        out,
                        nb,
                    ),
                    Triangle::Upper if r1 < n => crate::gemm::gemm_acc_strided(
                        -1.0,
                        nb,
                        ncols,
                        n - r1,
                        &t[r0 * trs + r1 * tcs..],
                        trs,
                        tcs,
                        &bs[r1..],
                        1,
                        ldb,
                        out,
                        nb,
                    ),
                    _ => {}
                }
            }
            // Substitution on the diagonal block.
            for c in 0..ncols {
                let col = &mut out[c * nb..(c + 1) * nb];
                match eff {
                    Triangle::Lower => {
                        for r in 0..nb {
                            let mut s = col[r];
                            for q in 0..r {
                                s -= t[(r0 + r) * trs + (r0 + q) * tcs] * col[q];
                            }
                            let d = t[(r0 + r) * trs + (r0 + r) * tcs];
                            assert!(d != 0.0, "trsm: zero diagonal at {}", r0 + r);
                            col[r] = s / d;
                        }
                    }
                    Triangle::Upper => {
                        for r in (0..nb).rev() {
                            let mut s = col[r];
                            for q in r + 1..nb {
                                s -= t[(r0 + r) * trs + (r0 + q) * tcs] * col[q];
                            }
                            let d = t[(r0 + r) * trs + (r0 + r) * tcs];
                            assert!(d != 0.0, "trsm: zero diagonal at {}", r0 + r);
                            col[r] = s / d;
                        }
                    }
                }
            }
            let bm = b.as_mut_slice();
            for c in 0..ncols {
                bm[c * ldb + r0..c * ldb + r1].copy_from_slice(&out[c * nb..c * nb + nb]);
            }
        });
    }
}

/// Solve `X * op(T) = B` in place, blocked by columns of B (contiguous, so
/// split borrows suffice): subtract the already-solved column blocks via
/// the GEMM core, then solve against the diagonal block row-wise.
fn trsm_blocked_right(eff: Triangle, t: &[f64], trs: usize, tcs: usize, n: usize, b: &mut Matrix) {
    let ldb = b.rows();
    let m = b.rows();
    let nblocks = n.div_ceil(TRI_NB);
    let order: Box<dyn Iterator<Item = usize>> = match eff {
        Triangle::Lower => Box::new((0..nblocks).rev()),
        Triangle::Upper => Box::new(0..nblocks),
    };
    for jb in order {
        let (c0, c1) = block_bounds(jb, n);
        let nb = c1 - c0;
        match eff {
            Triangle::Lower => {
                // X[:, j] T[j,j] = B[:, j] - X[:, >j] T[>j, j]; right blocks
                // already solved (descending order).
                let (head, tail) = b.as_mut_slice().split_at_mut(c1 * ldb);
                let block = &mut head[c0 * ldb..];
                if c1 < n {
                    crate::gemm::gemm_acc_strided(
                        -1.0,
                        m,
                        nb,
                        n - c1,
                        tail,
                        1,
                        ldb,
                        &t[c1 * trs + c0 * tcs..],
                        trs,
                        tcs,
                        block,
                        ldb,
                    );
                }
                for r in 0..m {
                    for c in (0..nb).rev() {
                        let mut s = block[r + c * ldb];
                        for q in c + 1..nb {
                            s -= block[r + q * ldb] * t[(c0 + q) * trs + (c0 + c) * tcs];
                        }
                        let d = t[(c0 + c) * trs + (c0 + c) * tcs];
                        assert!(d != 0.0, "trsm: zero diagonal at {}", c0 + c);
                        block[r + c * ldb] = s / d;
                    }
                }
            }
            Triangle::Upper => {
                let (head, tail) = b.as_mut_slice().split_at_mut(c0 * ldb);
                let block = &mut tail[..nb * ldb];
                if c0 > 0 {
                    crate::gemm::gemm_acc_strided(
                        -1.0,
                        m,
                        nb,
                        c0,
                        head,
                        1,
                        ldb,
                        &t[c0 * tcs..],
                        trs,
                        tcs,
                        block,
                        ldb,
                    );
                }
                for r in 0..m {
                    for c in 0..nb {
                        let mut s = block[r + c * ldb];
                        for q in 0..c {
                            s -= block[r + q * ldb] * t[(c0 + q) * trs + (c0 + c) * tcs];
                        }
                        let d = t[(c0 + c) * trs + (c0 + c) * tcs];
                        assert!(d != 0.0, "trsm: zero diagonal at {}", c0 + c);
                        block[r + c * ldb] = s / d;
                    }
                }
            }
        }
    }
}

/// The seed's scalar TRMM (reference implementation and small-size path).
fn trmm_scalar(side: Side, tri: Triangle, ta: Transpose, alpha: f64, a: &Matrix, b: &mut Matrix) {
    let n = a.rows();
    // Effective triangle after transposition.
    let eff = match ta {
        Transpose::No => tri,
        Transpose::Yes => tri.transposed(),
    };
    let at = |i: usize, j: usize| -> f64 {
        let v = match ta {
            Transpose::No => a.get(i, j),
            Transpose::Yes => a.get(j, i),
        };
        // Reference only the stored triangle.
        let stored = match eff {
            Triangle::Lower => j <= i,
            Triangle::Upper => i <= j,
        };
        if stored {
            v
        } else {
            0.0
        }
    };

    match side {
        Side::Left => {
            // B := alpha * T * B, processed per column of B.
            for jc in 0..b.cols() {
                let col: Vec<f64> = b.col(jc).to_vec();
                let out = b.col_mut(jc);
                match eff {
                    Triangle::Lower => {
                        for i in (0..n).rev() {
                            let mut s = 0.0;
                            for j in 0..=i {
                                s += at(i, j) * col[j];
                            }
                            out[i] = alpha * s;
                        }
                    }
                    Triangle::Upper => {
                        for i in 0..n {
                            let mut s = 0.0;
                            for j in i..n {
                                s += at(i, j) * col[j];
                            }
                            out[i] = alpha * s;
                        }
                    }
                }
            }
        }
        Side::Right => {
            // B := alpha * B * T, processed per row of B.
            let rows = b.rows();
            for ir in 0..rows {
                let row: Vec<f64> = (0..n).map(|j| b.get(ir, j)).collect();
                for jc in 0..n {
                    let mut s = 0.0;
                    match eff {
                        Triangle::Lower => {
                            for p in jc..n {
                                s += row[p] * at(p, jc);
                            }
                        }
                        Triangle::Upper => {
                            for p in 0..=jc {
                                s += row[p] * at(p, jc);
                            }
                        }
                    }
                    b.set(ir, jc, alpha * s);
                }
            }
        }
    }
}

/// The seed's scalar TRSM (reference implementation and small-size path).
fn trsm_scalar(side: Side, tri: Triangle, ta: Transpose, alpha: f64, a: &Matrix, b: &mut Matrix) {
    let n = a.rows();
    let eff = match ta {
        Transpose::No => tri,
        Transpose::Yes => tri.transposed(),
    };
    let at = |i: usize, j: usize| -> f64 {
        match ta {
            Transpose::No => a.get(i, j),
            Transpose::Yes => a.get(j, i),
        }
    };

    if alpha != 1.0 {
        b.scale(alpha);
    }

    match side {
        Side::Left => {
            for jc in 0..b.cols() {
                match eff {
                    Triangle::Lower => {
                        // Forward substitution.
                        for i in 0..n {
                            let mut s = b.get(i, jc);
                            for j in 0..i {
                                s -= at(i, j) * b.get(j, jc);
                            }
                            let d = at(i, i);
                            assert!(d != 0.0, "trsm: zero diagonal at {i}");
                            b.set(i, jc, s / d);
                        }
                    }
                    Triangle::Upper => {
                        // Back substitution.
                        for i in (0..n).rev() {
                            let mut s = b.get(i, jc);
                            for j in i + 1..n {
                                s -= at(i, j) * b.get(j, jc);
                            }
                            let d = at(i, i);
                            assert!(d != 0.0, "trsm: zero diagonal at {i}");
                            b.set(i, jc, s / d);
                        }
                    }
                }
            }
        }
        Side::Right => {
            // X * T = B  <=>  T^T * X^T = B^T; solve row-wise.
            let rows = b.rows();
            for ir in 0..rows {
                match eff {
                    Triangle::Lower => {
                        // x * L = b: process columns right-to-left.
                        for j in (0..n).rev() {
                            let mut s = b.get(ir, j);
                            for p in j + 1..n {
                                s -= b.get(ir, p) * at(p, j);
                            }
                            let d = at(j, j);
                            assert!(d != 0.0, "trsm: zero diagonal at {j}");
                            b.set(ir, j, s / d);
                        }
                    }
                    Triangle::Upper => {
                        // x * U = b: process columns left-to-right.
                        for j in 0..n {
                            let mut s = b.get(ir, j);
                            for p in 0..j {
                                s -= b.get(ir, p) * at(p, j);
                            }
                            let d = at(j, j);
                            assert!(d != 0.0, "trsm: zero diagonal at {j}");
                            b.set(ir, j, s / d);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::norms::relative_error;

    fn lower(n: usize) -> Matrix {
        let mut a = Matrix::from_fn(n, n, |i, j| 1.0 + (i * n + j) as f64 * 0.1);
        a.force_triangle(Triangle::Lower);
        for i in 0..n {
            a.set(i, i, 2.0 + i as f64); // well-conditioned diagonal
        }
        a
    }

    fn upper(n: usize) -> Matrix {
        lower(n).transposed()
    }

    #[test]
    fn trmm_left_matches_gemm() {
        let a = lower(5);
        let b = Matrix::from_fn(5, 3, |i, j| (i + 2 * j) as f64 - 4.0);
        let mut got = b.clone();
        trmm(
            Side::Left,
            Triangle::Lower,
            Transpose::No,
            1.0,
            &a,
            &mut got,
        );
        let want = matmul(&a, Transpose::No, &b, Transpose::No);
        assert!(relative_error(&got, &want) < 1e-13);
    }

    #[test]
    fn trmm_right_matches_gemm() {
        let a = upper(4);
        let b = Matrix::from_fn(3, 4, |i, j| 1.0 / (1.0 + (i + j) as f64));
        let mut got = b.clone();
        trmm(
            Side::Right,
            Triangle::Upper,
            Transpose::No,
            1.0,
            &a,
            &mut got,
        );
        let want = matmul(&b, Transpose::No, &a, Transpose::No);
        assert!(relative_error(&got, &want) < 1e-13);
    }

    #[test]
    fn trmm_transposed_matches_gemm() {
        let a = lower(6);
        let b = Matrix::from_fn(6, 2, |i, j| ((i * 3 + j) % 5) as f64);
        let mut got = b.clone();
        trmm(
            Side::Left,
            Triangle::Lower,
            Transpose::Yes,
            2.0,
            &a,
            &mut got,
        );
        let mut want = matmul(&a, Transpose::Yes, &b, Transpose::No);
        want.scale(2.0);
        assert!(relative_error(&got, &want) < 1e-13);
    }

    #[test]
    fn trmm_ignores_garbage_in_dead_triangle() {
        // Fill the strictly-upper triangle with NaN; TRMM must not read it.
        let mut a = lower(4);
        for j in 0..4 {
            for i in 0..j {
                a.set(i, j, f64::NAN);
            }
        }
        let b = Matrix::identity(4);
        let mut got = b.clone();
        trmm(
            Side::Left,
            Triangle::Lower,
            Transpose::No,
            1.0,
            &a,
            &mut got,
        );
        assert!(got.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn trsm_left_round_trips_with_trmm() {
        for (tri, ta) in [
            (Triangle::Lower, Transpose::No),
            (Triangle::Lower, Transpose::Yes),
            (Triangle::Upper, Transpose::No),
            (Triangle::Upper, Transpose::Yes),
        ] {
            let a = match tri {
                Triangle::Lower => lower(5),
                Triangle::Upper => upper(5),
            };
            let x = Matrix::from_fn(5, 3, |i, j| (i as f64 - j as f64) * 0.3 + 1.0);
            let mut b = x.clone();
            trmm(Side::Left, tri, ta, 1.0, &a, &mut b);
            trsm(Side::Left, tri, ta, 1.0, &a, &mut b);
            assert!(relative_error(&b, &x) < 1e-11, "{tri:?} {ta:?}");
        }
    }

    #[test]
    fn trsm_right_round_trips_with_trmm() {
        for (tri, ta) in [
            (Triangle::Lower, Transpose::No),
            (Triangle::Lower, Transpose::Yes),
            (Triangle::Upper, Transpose::No),
            (Triangle::Upper, Transpose::Yes),
        ] {
            let a = match tri {
                Triangle::Lower => lower(4),
                Triangle::Upper => upper(4),
            };
            let x = Matrix::from_fn(3, 4, |i, j| ((2 * i + j) % 7) as f64 - 3.0);
            let mut b = x.clone();
            trmm(Side::Right, tri, ta, 1.0, &a, &mut b);
            trsm(Side::Right, tri, ta, 1.0, &a, &mut b);
            assert!(relative_error(&b, &x) < 1e-11, "{tri:?} {ta:?}");
        }
    }

    #[test]
    fn trsm_applies_alpha() {
        let a = Matrix::identity(3);
        let mut b = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let want = {
            let mut w = b.clone();
            w.scale(3.0);
            w
        };
        trsm(Side::Left, Triangle::Lower, Transpose::No, 3.0, &a, &mut b);
        assert_eq!(b, want);
    }

    /// Blocked paths (n >= TRI_BLOCK_MIN) against the scalar reference,
    /// all sides/triangles/transposes, with a non-block-multiple size.
    #[test]
    fn blocked_matches_scalar_reference() {
        let n = super::TRI_BLOCK_MIN + super::TRI_NB / 2 + 3;
        let ncols = 29;
        for tri in [Triangle::Lower, Triangle::Upper] {
            let a = match tri {
                Triangle::Lower => lower(n),
                Triangle::Upper => upper(n),
            };
            for ta in [Transpose::No, Transpose::Yes] {
                for (side, rows, cols) in [(Side::Left, n, ncols), (Side::Right, ncols, n)] {
                    let x = Matrix::from_fn(rows, cols, |i, j| {
                        ((3 * i + 5 * j) % 17) as f64 * 0.25 - 2.0
                    });

                    let mut got = x.clone();
                    trmm(side, tri, ta, 1.5, &a, &mut got);
                    let mut want = x.clone();
                    trmm_scalar(side, tri, ta, 1.5, &a, &mut want);
                    assert!(
                        relative_error(&got, &want) < 1e-12,
                        "trmm {side:?} {tri:?} {ta:?}"
                    );

                    let mut got = x.clone();
                    trsm(side, tri, ta, 0.5, &a, &mut got);
                    let mut want = x.clone();
                    trsm_scalar(side, tri, ta, 0.5, &a, &mut want);
                    assert!(
                        relative_error(&got, &want) < 1e-9,
                        "trsm {side:?} {tri:?} {ta:?}"
                    );
                }
            }
        }
    }

    /// The blocked kernels must also leave the dead triangle unread.
    #[test]
    fn blocked_ignores_garbage_in_dead_triangle() {
        let n = super::TRI_BLOCK_MIN + 10;
        let mut a = lower(n);
        for j in 0..n {
            for i in 0..j {
                a.set(i, j, f64::NAN);
            }
        }
        for side in [Side::Left, Side::Right] {
            let (rows, cols) = match side {
                Side::Left => (n, 7),
                Side::Right => (7, n),
            };
            let x = Matrix::from_fn(rows, cols, |i, j| (i + j) as f64 * 0.01 + 1.0);
            let mut got = x.clone();
            trmm(side, Triangle::Lower, Transpose::No, 1.0, &a, &mut got);
            assert!(got.as_slice().iter().all(|v| v.is_finite()), "{side:?}");
            let mut got = x.clone();
            trsm(side, Triangle::Lower, Transpose::No, 1.0, &a, &mut got);
            assert!(got.as_slice().iter().all(|v| v.is_finite()), "{side:?}");
        }
    }
}
