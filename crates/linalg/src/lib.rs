//! Dense linear-algebra substrate for the `symgmc` generalized matrix chain
//! compiler.
//!
//! This crate provides the numeric layer that generated variants execute on:
//! a column-major [`Matrix`] type plus BLAS-3 style kernels (`gemm`, `symm`,
//! `trmm`, `trsm`), LAPACK-style factorizations (LU with partial pivoting,
//! Cholesky, Householder QR), explicit inverses, and random generators for
//! structured matrices (symmetric, SPD, triangular, orthogonal).
//!
//! Everything is implemented from scratch with no external BLAS. All code
//! is safe Rust except the explicitly-SIMD GEMM micro-kernel, which uses
//! `std::arch` AVX-512 intrinsics when the target supports them (with a
//! safe autovectorized fallback elsewhere). GEMM is cache-blocked and
//! packed in the BLIS style (see [`gemm`]'s module docs), and `symm` /
//! `trmm` / `trsm` route their large block updates through the same
//! packed core, so the *relative* kernel costs the compiler's experiments
//! depend on are preserved while the absolute rates track the hardware.
//!
//! # Example
//!
//! ```
//! use gmc_linalg::{Matrix, gemm, Transpose};
//!
//! let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f64);
//! let b = Matrix::from_fn(3, 2, |i, j| (i * j) as f64);
//! let mut c = Matrix::zeros(2, 2);
//! gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
//! assert_eq!(c.get(0, 0), a.row(0).iter().zip(b.col(0)).map(|(x, y)| x * y).sum::<f64>());
//! ```

#![warn(missing_docs)]
// Numeric kernels use explicit loop indices throughout: triangular loops
// with data-dependent bounds read far clearer with `for i in k..n` than
// with iterator adapters, and the indices mirror the LAPACK reference
// formulations the code follows.
#![allow(clippy::needless_range_loop)]

mod chol;
mod error;
mod gemm;
mod generate;
mod inverse;
mod lu;
mod matrix;
mod norms;
mod qr;
mod symm;
mod tri;

pub use chol::{cholesky, potrs, CholeskyFactor};
pub use error::LinalgError;
pub use gemm::{
    gemm, gemm_blocked, gemm_scalar, gemm_with, matmul, GemmWorkspace, BLOCKED_MIN_WORK, KC, MC,
    MR, NC, NR,
};
pub use generate::{
    random_general, random_lower_triangular, random_nonsingular, random_orthogonal, random_spd,
    random_symmetric, random_upper_triangular,
};
pub use inverse::{inverse_general, inverse_spd, inverse_triangular};
pub use lu::{getrs, lu_factor, LuFactors};
pub use matrix::{Matrix, Transpose, Triangle};
pub use norms::{frobenius_norm, max_abs, relative_error};
pub use qr::{householder_qr, QrFactors};
pub use symm::{symm, Side};
pub use tri::{trmm, trsm};

/// Result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
