//! Random generators for structured matrices.
//!
//! The experiment harness needs well-conditioned random instances of every
//! feature combination in the paper's grammar: general, symmetric, SPD,
//! lower/upper triangular (singular or not), and orthogonal.

use crate::gemm::matmul;
use crate::matrix::{Matrix, Transpose, Triangle};
use crate::qr::householder_qr;
use rand::Rng;

/// A random general matrix with i.i.d. entries in `[-1, 1]`.
#[must_use]
pub fn random_general<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..=1.0))
}

/// A random nonsingular (well-conditioned, diagonally dominant) matrix.
#[must_use]
pub fn random_nonsingular<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Matrix {
    let mut a = random_general(rng, n, n);
    for i in 0..n {
        let v = a.get(i, i) + n as f64;
        a.set(i, i, v);
    }
    a
}

/// A random symmetric (possibly indefinite) matrix.
#[must_use]
pub fn random_symmetric<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Matrix {
    let mut a = random_general(rng, n, n);
    a.symmetrize();
    a
}

/// A random symmetric positive-definite matrix (`B Bᵀ + n·I`).
#[must_use]
pub fn random_spd<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Matrix {
    let b = random_general(rng, n, n);
    let mut a = matmul(&b, Transpose::No, &b, Transpose::Yes);
    for i in 0..n {
        let v = a.get(i, i) + n as f64;
        a.set(i, i, v);
    }
    a.symmetrize(); // kill rounding asymmetry
    a
}

/// A random lower-triangular matrix; `nonsingular` forces a dominant diagonal.
#[must_use]
pub fn random_lower_triangular<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    nonsingular: bool,
) -> Matrix {
    let mut a = random_general(rng, n, n);
    a.force_triangle(Triangle::Lower);
    if nonsingular {
        for i in 0..n {
            a.set(i, i, 1.0 + rng.gen_range(0.5..=1.5));
        }
    }
    a
}

/// A random upper-triangular matrix; `nonsingular` forces a dominant diagonal.
#[must_use]
pub fn random_upper_triangular<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    nonsingular: bool,
) -> Matrix {
    random_lower_triangular(rng, n, nonsingular).transposed()
}

/// A random orthogonal matrix (Q factor of the QR factorization of a random
/// general matrix).
#[must_use]
pub fn random_orthogonal<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Matrix {
    let a = random_general(rng, n, n);
    householder_qr(&a).into_parts().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chol::cholesky;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn general_has_requested_shape() {
        let m = random_general(&mut rng(), 3, 7);
        assert_eq!((m.rows(), m.cols()), (3, 7));
        assert!(m.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn nonsingular_is_invertible() {
        let a = random_nonsingular(&mut rng(), 8);
        assert!(crate::inverse_general(&a).is_ok());
    }

    #[test]
    fn symmetric_is_symmetric() {
        assert!(random_symmetric(&mut rng(), 6).is_symmetric(1e-14));
    }

    #[test]
    fn spd_is_positive_definite() {
        let a = random_spd(&mut rng(), 6);
        assert!(a.is_symmetric(1e-12));
        assert!(cholesky(&a).is_ok());
    }

    #[test]
    fn triangular_structure_holds() {
        let l = random_lower_triangular(&mut rng(), 5, true);
        assert!(l.is_lower_triangular(0.0));
        assert!((0..5).all(|i| l.get(i, i).abs() >= 0.5));
        let u = random_upper_triangular(&mut rng(), 5, false);
        assert!(u.is_upper_triangular(0.0));
    }

    #[test]
    fn orthogonal_has_orthonormal_columns() {
        let q = random_orthogonal(&mut rng(), 7);
        let qtq = matmul(&q, Transpose::Yes, &q, Transpose::No);
        assert!(qtq.is_identity(1e-11));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = random_general(&mut rng(), 4, 4);
        let b = random_general(&mut rng(), 4, 4);
        assert_eq!(a, b);
    }
}
