use std::error::Error;
use std::fmt;

/// Errors produced by factorizations and solvers in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand dimensions are incompatible with the requested operation.
    ///
    /// Carries a human-readable description of the mismatch.
    DimensionMismatch(String),
    /// A factorization encountered a (numerically) singular pivot.
    ///
    /// The payload is the zero-based index of the offending pivot.
    SingularPivot(usize),
    /// A Cholesky factorization found a non-positive diagonal entry, so the
    /// input matrix is not positive definite.
    NotPositiveDefinite(usize),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            LinalgError::SingularPivot(i) => write!(f, "singular pivot at index {i}"),
            LinalgError::NotPositiveDefinite(i) => {
                write!(f, "matrix not positive definite (leading minor {i})")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LinalgError::DimensionMismatch("2x3 * 4x5".into());
        assert!(e.to_string().contains("2x3 * 4x5"));
        let e = LinalgError::SingularPivot(3);
        assert!(e.to_string().contains('3'));
        let e = LinalgError::NotPositiveDefinite(1);
        assert!(e.to_string().contains("positive definite"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
