//! Low-overhead observability substrate for the gmc pipeline.
//!
//! Three pieces, no external dependencies, shim-compatible offline:
//!
//! * [`Histogram`] — a fixed-size log-linear latency histogram
//!   (HDR-style). Recording is three relaxed atomic adds plus one
//!   `fetch_max`, so a histogram can sit behind an `Arc` and be written
//!   from a shard thread while readers take consistent-enough
//!   [`Snapshot`]s without any lock. Snapshots merge exactly (buckets
//!   are additive) and answer p50/p90/p99/max queries.
//! * [`Recorder`] / [`StageProfile`] — monotonic stage timers for the
//!   compile pipeline (parse → enumerate → DP → select → expand →
//!   emit → execute) plus per-kernel execution timings. A disabled
//!   recorder costs one branch per span: [`Recorder::start`] returns
//!   an empty [`SpanGuard`] and [`Recorder::stop`] discards it.
//! * Prometheus text exposition — [`Snapshot::write_prometheus`] and
//!   [`write_prom_counter`] render the classic
//!   `name_bucket{le="..."} N` cumulative form.
//!
//! # Bucket layout
//!
//! Values are recorded in **microseconds**. The first 8 buckets are
//! linear (one per microsecond, values `0..8`); above that each
//! power-of-two octave is split into 8 sub-buckets, giving a relative
//! quantization error of at most 12.5% everywhere. 496 buckets cover
//! the full `u64` range, so the array never saturates and `record_us`
//! is branch-light: a leading-zeros count and two shifts. Quantiles
//! report the **inclusive upper edge** of the selected bucket (the
//! same `le` boundary the Prometheus exposition uses), so a reported
//! p99 is always ≥ the true sample p99 and within one bucket of it.
//!
//! # Overhead contract
//!
//! The session-level toggle (`GMC_TRACE`, [`force_trace_mode`])
//! governs the *pipeline tracing* — stage spans and per-kernel timers.
//! When it is off, a [`Recorder`] records nothing and each
//! instrumented site pays a single predictable branch (no clock
//! read). The serving-layer request histograms are not gated: they
//! are a handful of relaxed atomics per *request* (not per stage) and
//! the health/metrics endpoints depend on them. The measured
//! end-to-end cost of tracing on vs off is recorded in
//! `BENCH_serve.json` (`trace_overhead_pct`, required ≤ 3%).
//!
//! # Exposition format
//!
//! [`Snapshot::write_prometheus`] emits, for a metric `name` with
//! label set `labels` (possibly empty):
//!
//! ```text
//! # TYPE name histogram
//! name_bucket{labels,le="0.000123"} 4     // cumulative, seconds
//! name_bucket{labels,le="+Inf"} 9
//! name_sum{labels} 0.001234
//! name_count{labels} 9
//! ```
//!
//! Only buckets that contain samples are listed (plus `+Inf`); a
//! cumulative histogram stays valid under any subset of boundaries,
//! and this keeps a 496-bucket histogram to a few lines per shard.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Number of sub-bucket bits per octave (8 sub-buckets, ≤ 12.5% error).
const SUB_BITS: u32 = 3;
/// Number of sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: 8 linear buckets + 8 per octave for the 61
/// octaves needed to cover `u64::MAX` microseconds.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS as usize) + SUB as usize;

/// Bucket index for a value in microseconds. Monotone non-decreasing
/// in the value; every `u64` maps to a valid index.
#[must_use]
pub fn bucket_index(value_us: u64) -> usize {
    if value_us < SUB {
        return value_us as usize;
    }
    let msb = 63 - u64::from(value_us.leading_zeros());
    let octave = msb - u64::from(SUB_BITS) + 1;
    let offset = (value_us >> (msb - u64::from(SUB_BITS))) - SUB;
    ((octave << SUB_BITS) + offset) as usize
}

/// Inclusive upper edge (microseconds) of bucket `index` — the `le`
/// boundary used for quantiles and the Prometheus exposition.
///
/// # Panics
///
/// Panics if `index >= NUM_BUCKETS`.
#[must_use]
pub fn bucket_le(index: usize) -> u64 {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let octave = index >> SUB_BITS;
    let offset = index & (SUB - 1);
    let width = 1u64 << (octave - 1);
    ((SUB + offset) << (octave - 1)) + (width - 1)
}

// ---------------------------------------------------------------------------
// Trace toggle (same pattern as GMC_SIMD / GMC_ENUM / GMC_FRAG).
// ---------------------------------------------------------------------------

/// Whether pipeline tracing (stage spans, kernel timers) is active.
///
/// Tracing never changes selection decisions or emitted artifacts, so
/// the mode is excluded from persistence fingerprints (like
/// `CompileOptions::scan_stripe`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Record stage spans and kernel timings (the default).
    On,
    /// Skip all recording; instrumented sites pay one branch.
    Off,
}

static FORCED_TRACE: AtomicU8 = AtomicU8::new(0);

/// Force the tracing mode for the process, overriding `GMC_TRACE`
/// (`None` restores env/default resolution). Takes effect for
/// recorders created afterwards.
pub fn force_trace_mode(mode: Option<TraceMode>) {
    let v = match mode {
        None => 0,
        Some(TraceMode::On) => 1,
        Some(TraceMode::Off) => 2,
    };
    FORCED_TRACE.store(v, Ordering::Relaxed);
}

fn env_trace_mode() -> TraceMode {
    static ENV: OnceLock<TraceMode> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("GMC_TRACE") {
        Ok(v) if v.eq_ignore_ascii_case("off") || v == "0" => TraceMode::Off,
        _ => TraceMode::On,
    })
}

/// The tracing mode in effect: forced value if set, else `GMC_TRACE`
/// (`off`/`0` disables), else [`TraceMode::On`].
#[must_use]
pub fn active_trace_mode() -> TraceMode {
    match FORCED_TRACE.load(Ordering::Relaxed) {
        1 => TraceMode::On,
        2 => TraceMode::Off,
        _ => env_trace_mode(),
    }
}

// ---------------------------------------------------------------------------
// Atomic histogram + plain snapshot.
// ---------------------------------------------------------------------------

/// Lock-free log-linear latency histogram (microsecond domain).
///
/// Writers call [`Histogram::record`] from any thread; readers take
/// [`Histogram::snapshot`]s or query quantiles directly. All accesses
/// are relaxed: counts are eventually consistent, which is the usual
/// (and sufficient) contract for telemetry.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one value in microseconds.
    pub fn record_us(&self, value_us: u64) {
        self.buckets[bucket_index(value_us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(value_us, Ordering::Relaxed);
        self.max_us.fetch_max(value_us, Ordering::Relaxed);
    }

    /// Record one duration (saturating at `u64::MAX` microseconds).
    pub fn record(&self, d: Duration) {
        self.record_us(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper-edge quantile in microseconds (`0.0 < q <= 1.0`); 0 when
    /// empty. Reads the live buckets without snapshotting.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_le(i);
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// Upper-edge quantile in milliseconds.
    #[must_use]
    pub fn quantile_ms(&self, q: f64) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let us = self.quantile_us(q) as f64;
        us / 1e3
    }

    /// A plain, mergeable copy of the current contents.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Plain (non-atomic) histogram contents: mergeable and queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (microseconds).
    pub sum_us: u64,
    /// Largest recorded value (microseconds).
    pub max_us: u64,
    buckets: Vec<u64>,
}

impl Default for Snapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl Snapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn empty() -> Self {
        Snapshot {
            count: 0,
            sum_us: 0,
            max_us: 0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }

    /// Record into a plain snapshot (for offline aggregation, e.g. the
    /// bench harness pooling per-request latencies).
    pub fn record_us(&mut self, value_us: u64) {
        self.buckets[bucket_index(value_us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(value_us);
        self.max_us = self.max_us.max(value_us);
    }

    /// Merge `other` into `self`. Histograms are exactly additive:
    /// `merge(a, b)` holds precisely the multiset union of buckets.
    pub fn merge(&mut self, other: &Snapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Upper-edge quantile in microseconds (`0.0 < q <= 1.0`); 0 when
    /// empty.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return bucket_le(i);
            }
        }
        self.max_us
    }

    /// Upper-edge quantile in milliseconds.
    #[must_use]
    pub fn quantile_ms(&self, q: f64) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let us = self.quantile_us(q) as f64;
        us / 1e3
    }

    /// Largest recorded value in milliseconds.
    #[must_use]
    pub fn max_ms(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let us = self.max_us as f64;
        us / 1e3
    }

    /// Mean recorded value in milliseconds (0 when empty).
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let mean = self.sum_us as f64 / self.count as f64;
        mean / 1e3
    }

    /// The non-empty cumulative buckets as `(le_us, cumulative_count)`
    /// pairs, in increasing `le` order (the `+Inf` bucket is implied
    /// by [`Snapshot::count`]).
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            if *b > 0 {
                cum += b;
                out.push((bucket_le(i), cum));
            }
        }
        out
    }

    /// Append this histogram in Prometheus text exposition format (see
    /// the crate docs). `labels` is the inner label list without
    /// braces (e.g. `shard="0"`), or empty for none; `le` boundaries
    /// and `_sum` are rendered in seconds. Set `with_type` for the
    /// first label set of a metric only — the `# TYPE` header must not
    /// repeat within one exposition.
    pub fn write_prometheus(&self, out: &mut String, name: &str, labels: &str, with_type: bool) {
        use std::fmt::Write as _;
        let sep = if labels.is_empty() { "" } else { "," };
        if with_type {
            let _ = writeln!(out, "# TYPE {name} histogram");
        }
        for (le_us, cum) in self.cumulative_buckets() {
            #[allow(clippy::cast_precision_loss)]
            let le_s = le_us as f64 / 1e6;
            let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{le_s:.6}\"}} {cum}");
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
            self.count
        );
        #[allow(clippy::cast_precision_loss)]
        let sum_s = self.sum_us as f64 / 1e6;
        if labels.is_empty() {
            let _ = writeln!(out, "{name}_sum {sum_s:.6}");
            let _ = writeln!(out, "{name}_count {}", self.count);
        } else {
            let _ = writeln!(out, "{name}_sum{{{labels}}} {sum_s:.6}");
            let _ = writeln!(out, "{name}_count{{{labels}}} {}", self.count);
        }
    }
}

/// Append one Prometheus counter line (with its `# TYPE` header when
/// `with_type` is set — emit it for the first label set of a metric
/// only). `labels` is the inner label list without braces, or empty.
pub fn write_prom_counter(out: &mut String, name: &str, labels: &str, value: u64, with_type: bool) {
    use std::fmt::Write as _;
    if with_type {
        let _ = writeln!(out, "# TYPE {name} counter");
    }
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {value}");
    }
}

/// Append one Prometheus gauge line — same shape as
/// [`write_prom_counter`] but typed `gauge`, for values that go down as
/// well as up (e.g. the serving layer's open-connection count).
pub fn write_prom_gauge(out: &mut String, name: &str, labels: &str, value: u64, with_type: bool) {
    use std::fmt::Write as _;
    if with_type {
        let _ = writeln!(out, "# TYPE {name} gauge");
    }
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {value}");
    }
}

// ---------------------------------------------------------------------------
// Pipeline stages, stage profile, recorder.
// ---------------------------------------------------------------------------

/// The compile-pipeline stages a [`StageProfile`] accounts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Source parsing (`.gmc` → shape).
    Parse,
    /// Variant-pool enumeration (span DAG / naive lowering).
    Enumerate,
    /// Per-instance optimum via the DP solver.
    Dp,
    /// Cost-matrix fill + Theorem-2 base-set selection.
    Select,
    /// Algorithm-1 greedy expansion.
    Expand,
    /// Code emission (C++/Rust renderers).
    Emit,
    /// Run-time variant execution (kernel calls).
    Execute,
}

/// Number of pipeline stages.
pub const NUM_STAGES: usize = 7;

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; NUM_STAGES] = [
        Stage::Parse,
        Stage::Enumerate,
        Stage::Dp,
        Stage::Select,
        Stage::Expand,
        Stage::Emit,
        Stage::Execute,
    ];

    /// Stable lower-case stage name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Enumerate => "enumerate",
            Stage::Dp => "dp",
            Stage::Select => "select",
            Stage::Expand => "expand",
            Stage::Emit => "emit",
            Stage::Execute => "execute",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::Enumerate => 1,
            Stage::Dp => 2,
            Stage::Select => 3,
            Stage::Expand => 4,
            Stage::Emit => 5,
            Stage::Execute => 6,
        }
    }
}

/// Accumulated per-stage spans and per-kernel execution timings.
///
/// Plain data: cloneable, diffable (for per-file reports out of a
/// long-lived session), mergeable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageProfile {
    totals_us: [u64; NUM_STAGES],
    calls: [u64; NUM_STAGES],
    /// `(kernel name, calls, total_us)`, insertion-ordered.
    kernels: Vec<(String, u64, u64)>,
}

impl StageProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one span of `us` microseconds against `stage`.
    pub fn record(&mut self, stage: Stage, us: u64) {
        let i = stage.index();
        self.totals_us[i] = self.totals_us[i].saturating_add(us);
        self.calls[i] += 1;
    }

    /// Record one kernel call of `us` microseconds.
    pub fn record_kernel(&mut self, name: &str, us: u64) {
        if let Some(k) = self.kernels.iter_mut().find(|k| k.0 == name) {
            k.1 += 1;
            k.2 = k.2.saturating_add(us);
        } else {
            self.kernels.push((name.to_owned(), 1, us));
        }
    }

    /// Total microseconds recorded against `stage`.
    #[must_use]
    pub fn stage_us(&self, stage: Stage) -> u64 {
        self.totals_us[stage.index()]
    }

    /// Number of spans recorded against `stage`.
    #[must_use]
    pub fn stage_calls(&self, stage: Stage) -> u64 {
        self.calls[stage.index()]
    }

    /// Sum of all stage totals, microseconds.
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.totals_us.iter().sum()
    }

    /// Per-kernel `(name, calls, total_us)` rows, insertion-ordered.
    #[must_use]
    pub fn kernels(&self) -> &[(String, u64, u64)] {
        &self.kernels
    }

    /// True when no span has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.calls.iter().all(|&c| c == 0) && self.kernels.is_empty()
    }

    /// The spans recorded since `earlier` (which must be a past copy
    /// of this profile): saturating per-stage and per-kernel
    /// subtraction.
    #[must_use]
    pub fn since(&self, earlier: &StageProfile) -> StageProfile {
        let mut out = StageProfile::new();
        for i in 0..NUM_STAGES {
            out.totals_us[i] = self.totals_us[i].saturating_sub(earlier.totals_us[i]);
            out.calls[i] = self.calls[i].saturating_sub(earlier.calls[i]);
        }
        for (name, calls, us) in &self.kernels {
            let (c0, u0) = earlier
                .kernels
                .iter()
                .find(|k| &k.0 == name)
                .map_or((0, 0), |k| (k.1, k.2));
            let (dc, du) = (calls.saturating_sub(c0), us.saturating_sub(u0));
            if dc > 0 || du > 0 {
                out.kernels.push((name.clone(), dc, du));
            }
        }
        out
    }

    /// Merge `other`'s spans into `self`.
    pub fn merge(&mut self, other: &StageProfile) {
        for i in 0..NUM_STAGES {
            self.totals_us[i] = self.totals_us[i].saturating_add(other.totals_us[i]);
            self.calls[i] += other.calls[i];
        }
        for (name, calls, us) in &other.kernels {
            if let Some(k) = self.kernels.iter_mut().find(|k| &k.0 == name) {
                k.1 += calls;
                k.2 = k.2.saturating_add(*us);
            } else {
                self.kernels.push((name.clone(), *calls, *us));
            }
        }
    }

    /// The human-readable per-stage breakdown printed by
    /// `gmcc --timings` and the slow-request log: one line per stage
    /// that ran, then one per kernel.
    #[must_use]
    pub fn render(&self, label: &str) -> String {
        use std::fmt::Write as _;
        #[allow(clippy::cast_precision_loss)]
        let total_ms = self.total_us() as f64 / 1e3;
        let mut out = format!("timings {label}: total {total_ms:.3} ms\n");
        for stage in Stage::ALL {
            let calls = self.stage_calls(stage);
            if calls == 0 {
                continue;
            }
            #[allow(clippy::cast_precision_loss)]
            let ms = self.stage_us(stage) as f64 / 1e3;
            let _ = writeln!(out, "  {:<9} {ms:>9.3} ms  ({calls} span(s))", stage.name());
        }
        for (name, calls, us) in &self.kernels {
            #[allow(clippy::cast_precision_loss)]
            let ms = *us as f64 / 1e3;
            let _ = writeln!(out, "  kernel {name:<7} {ms:>9.3} ms  ({calls} call(s))");
        }
        out
    }
}

/// An in-flight span: holds the start instant, or nothing when the
/// recorder is disabled.
#[derive(Debug)]
pub struct SpanGuard(Option<Instant>);

/// Per-session tracing frontend: an enabled flag (resolved from
/// [`active_trace_mode`] at construction) in front of a
/// [`StageProfile`]. Disabled recorders skip the clock entirely.
#[derive(Debug)]
pub struct Recorder {
    enabled: bool,
    profile: StageProfile,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder whose enabled flag follows [`active_trace_mode`].
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            enabled: active_trace_mode() == TraceMode::On,
            profile: StageProfile::new(),
        }
    }

    /// A recorder that never records.
    #[must_use]
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            profile: StageProfile::new(),
        }
    }

    /// Whether spans are being recorded.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Override the session-level toggle for this recorder.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Begin a span (reads the clock only when enabled).
    #[must_use]
    pub fn start(&self) -> SpanGuard {
        SpanGuard(if self.enabled {
            Some(Instant::now())
        } else {
            None
        })
    }

    /// Close a span against `stage`; a guard from a disabled recorder
    /// is discarded for free.
    pub fn stop(&mut self, stage: Stage, guard: SpanGuard) {
        if let Some(start) = guard.0 {
            let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.profile.record(stage, us);
        }
    }

    /// Record one kernel call (no-op when disabled).
    pub fn record_kernel(&mut self, name: &str, d: Duration) {
        if self.enabled {
            let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
            self.profile.record_kernel(name, us);
        }
    }

    /// The accumulated profile.
    #[must_use]
    pub fn profile(&self) -> &StageProfile {
        &self.profile
    }

    /// Take the accumulated profile, leaving an empty one.
    pub fn take(&mut self) -> StageProfile {
        std::mem::take(&mut self.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_covers_u64() {
        let samples = [
            0u64,
            1,
            7,
            8,
            9,
            15,
            16,
            17,
            100,
            1_000,
            65_535,
            65_536,
            1 << 30,
            u64::MAX / 2,
            u64::MAX,
        ];
        let mut last = 0usize;
        for &v in &samples {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "index {idx} out of range for {v}");
            assert!(idx >= last, "index not monotone at {v}");
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_le_is_the_inclusive_upper_edge() {
        for v in (0u64..4096).chain([1 << 20, 1 << 40, u64::MAX]) {
            let idx = bucket_index(v);
            let le = bucket_le(idx);
            assert!(le >= v, "le {le} below value {v}");
            assert_eq!(
                bucket_index(le),
                idx,
                "upper edge {le} leaves bucket of {v}"
            );
            if idx > 0 {
                assert!(
                    bucket_le(idx - 1) < v,
                    "value {v} also fits the previous bucket"
                );
            }
        }
    }

    #[test]
    fn linear_region_is_exact_and_octaves_bound_error() {
        for v in 0..8u64 {
            assert_eq!(bucket_le(bucket_index(v)), v);
        }
        // Above the linear region the upper edge overshoots by < 12.5%.
        for v in [8u64, 100, 5_000, 123_456, 1 << 33] {
            let le = bucket_le(bucket_index(v));
            assert!((le - v) * 8 <= v, "quantization error over 12.5% at {v}");
        }
    }

    #[test]
    fn histogram_records_and_reports_percentiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record_us(v * 10);
        }
        assert_eq!(h.count(), 100);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_us, 1000);
        // Upper-edge quantiles are >= the exact sample quantiles and
        // within one bucket (12.5%) of them.
        let p50 = s.quantile_us(0.50);
        let p99 = s.quantile_us(0.99);
        assert!((500..=570).contains(&p50), "p50 {p50}");
        assert!((990..=1120).contains(&p99), "p99 {p99}");
        assert_eq!(s.quantile_us(1.0), bucket_le(bucket_index(1000)));
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut s = Snapshot::empty();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            s.record_us(x % 1_000_000);
        }
        let qs = [0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0];
        for w in qs.windows(2) {
            assert!(
                s.quantile_us(w[0]) <= s.quantile_us(w[1]),
                "quantiles not monotone at {w:?}"
            );
        }
        assert!(s.quantile_us(1.0) <= bucket_le(bucket_index(s.max_us)));
    }

    #[test]
    fn merge_is_exactly_additive() {
        let (a, b) = (Histogram::new(), Histogram::new());
        let mut pooled = Snapshot::empty();
        for v in 0..500u64 {
            let val = v * v % 10_000;
            if v % 2 == 0 {
                a.record_us(val)
            } else {
                b.record_us(val)
            }
            pooled.record_us(val);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, pooled);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile_us(0.99), 0);
        assert_eq!(s.max_ms(), 0.0);
        assert_eq!(s.mean_ms(), 0.0);
        assert!(s.cumulative_buckets().is_empty());
    }

    #[test]
    fn prometheus_exposition_renders_cumulative_buckets() {
        let h = Histogram::new();
        h.record_us(1_000); // 1 ms
        h.record_us(1_000);
        h.record_us(50_000); // 50 ms
        let mut out = String::new();
        h.snapshot()
            .write_prometheus(&mut out, "gmc_request_seconds", "shard=\"0\"", true);
        assert!(out.contains("# TYPE gmc_request_seconds histogram"));
        assert!(out.contains("gmc_request_seconds_bucket{shard=\"0\",le=\"+Inf\"} 3"));
        assert!(out.contains("gmc_request_seconds_count{shard=\"0\"} 3"));
        // Cumulative: the 50 ms bucket line must count all 3 samples.
        let last_bucket = out
            .lines()
            .rfind(|l| l.contains("_bucket") && !l.contains("+Inf"))
            .unwrap();
        assert!(last_bucket.ends_with(" 3"), "not cumulative: {last_bucket}");
        let mut counter = String::new();
        write_prom_counter(&mut counter, "gmc_requests_total", "shard=\"0\"", 3, true);
        assert_eq!(
            counter,
            "# TYPE gmc_requests_total counter\ngmc_requests_total{shard=\"0\"} 3\n"
        );
    }

    #[test]
    fn stage_profile_records_diffs_and_renders() {
        let mut p = StageProfile::new();
        p.record(Stage::Enumerate, 1_500);
        p.record(Stage::Dp, 300);
        p.record(Stage::Dp, 200);
        p.record_kernel("GEMM", 42);
        let before = p.clone();
        p.record(Stage::Select, 1_000);
        p.record_kernel("GEMM", 8);
        p.record_kernel("TRSM", 5);
        let delta = p.since(&before);
        assert_eq!(delta.stage_us(Stage::Select), 1_000);
        assert_eq!(delta.stage_us(Stage::Dp), 0);
        assert_eq!(delta.total_us(), 1_000);
        assert_eq!(
            delta.kernels(),
            &[("GEMM".to_owned(), 1, 8), ("TRSM".to_owned(), 1, 5)]
        );
        let mut merged = before.clone();
        merged.merge(&delta);
        assert_eq!(merged, p);
        let text = p.render("test.gmc");
        assert!(text.contains("timings test.gmc"));
        assert!(text.contains("enumerate"));
        assert!(text.contains("kernel GEMM"));
        assert!(!text.contains("parse"), "unused stages are omitted");
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        force_trace_mode(Some(TraceMode::Off));
        let mut r = Recorder::new();
        assert!(!r.enabled());
        let g = r.start();
        r.stop(Stage::Parse, g);
        r.record_kernel("GEMM", Duration::from_millis(1));
        assert!(r.profile().is_empty());
        force_trace_mode(Some(TraceMode::On));
        let mut r = Recorder::new();
        assert!(r.enabled());
        let g = r.start();
        r.stop(Stage::Parse, g);
        assert_eq!(r.profile().stage_calls(Stage::Parse), 1);
        force_trace_mode(None);
    }

    #[test]
    fn recorder_take_resets_the_profile() {
        let mut r = Recorder::disabled();
        r.set_enabled(true);
        let g = r.start();
        r.stop(Stage::Emit, g);
        let taken = r.take();
        assert_eq!(taken.stage_calls(Stage::Emit), 1);
        assert!(r.profile().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Merging two histograms answers quantile queries within one
        /// bucket of the exact pooled-sample quantile.
        #[test]
        fn merged_quantiles_track_pooled_samples(
            xs in proptest::collection::vec(0u64..2_000_000, 1..120),
            ys in proptest::collection::vec(0u64..2_000_000, 1..120),
            qi in 0usize..5,
        ) {
            let q = [0.5, 0.9, 0.95, 0.99, 1.0][qi];
            let (ha, hb) = (Histogram::new(), Histogram::new());
            for &x in &xs { ha.record_us(x); }
            for &y in &ys { hb.record_us(y); }
            let mut merged = ha.snapshot();
            merged.merge(&hb.snapshot());

            let mut pooled: Vec<u64> = xs.iter().chain(&ys).copied().collect();
            pooled.sort_unstable();
            let n = pooled.len();
            prop_assert_eq!(merged.count, n as u64);
            // Nearest-rank exact quantile over the pooled samples.
            #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
            #[allow(clippy::cast_sign_loss)]
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = pooled[rank - 1];

            let got = merged.quantile_us(q);
            let (bi_exact, bi_got) = (bucket_index(exact), bucket_index(got));
            prop_assert!(
                bi_got >= bi_exact.saturating_sub(1) && bi_got <= bi_exact + 1,
                "quantile {} of merged histogram {} (bucket {}) not within one bucket of exact {} (bucket {})",
                q, got, bi_got, exact, bi_exact
            );
        }

        /// Merge order is irrelevant and counts are conserved.
        #[test]
        fn merge_commutes(
            xs in proptest::collection::vec(0u64..1_000_000, 0..80),
            ys in proptest::collection::vec(0u64..1_000_000, 0..80),
        ) {
            let (ha, hb) = (Histogram::new(), Histogram::new());
            for &x in &xs { ha.record_us(x); }
            for &y in &ys { hb.record_us(y); }
            let mut ab = ha.snapshot();
            ab.merge(&hb.snapshot());
            let mut ba = hb.snapshot();
            ba.merge(&ha.snapshot());
            prop_assert_eq!(&ab, &ba);
            prop_assert_eq!(ab.count, (xs.len() + ys.len()) as u64);
        }
    }
}
