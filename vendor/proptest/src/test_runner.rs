//! Test-runner plumbing: configuration, RNG, and case outcomes.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Rejection reason for a strategy that could not produce a value.
pub type Reason = String;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives strategy generation. Deterministically seeded so failures
/// reproduce across runs (upstream seeds from entropy).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: StdRng,
}

impl TestRunner {
    /// A runner with the given configuration.
    #[must_use]
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            rng: StdRng::seed_from_u64(0x5eed_cafe_f00d_0001),
        }
    }

    /// The runner's RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// The runner's configuration.
    #[must_use]
    pub fn config(&self) -> &ProptestConfig {
        &self.config
    }
}

impl Default for TestRunner {
    fn default() -> Self {
        TestRunner::new(ProptestConfig::default())
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` failed); it does not count.
    Reject(Reason),
    /// The property was falsified.
    Fail(Reason),
}

impl TestCaseError {
    /// A rejection with the given reason.
    #[must_use]
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// A failure with the given reason.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// Outcome of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;
