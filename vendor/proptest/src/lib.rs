//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*` / [`prop_assume!`],
//! range and tuple strategies, [`collection::vec`], [`sample::select`],
//! `any::<T>()`, and the combinators `prop_map` / `prop_flat_map` /
//! `prop_filter`.
//!
//! Differences from upstream, deliberately accepted for an offline build:
//! there is **no shrinking** (a failing case reports the original inputs),
//! and the runner RNG is seeded deterministically so failures reproduce
//! across runs.

pub mod strategy;
pub mod test_runner;

/// Strategy combinator module namespace compatibility (`prop::...`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::{Reason, TestRunner};

    /// Size specification for [`vec`]: an exact count or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Result<Self::Value, Reason> {
            use rand::Rng;
            let n = runner
                .rng()
                .gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Strategies drawing from explicit value pools.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::{Reason, TestRunner};

    /// Strategy selecting a uniformly random element of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty option list");
        Select { options }
    }

    /// See [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> Result<T, Reason> {
            use rand::Rng;
            let i = runner.rng().gen_range(0..self.options.len());
            Ok(self.options[i].clone())
        }
    }
}

/// Types with a canonical strategy, for [`arbitrary::any`].
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::{Reason, TestRunner};
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Clone {
        /// Draw an arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            use rand::Rng;
            runner.rng().gen::<bool>()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> Self {
                    use rand::RngCore;
                    runner.rng().next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            use rand::Rng;
            runner.rng().gen::<f64>() * 2.0 - 1.0
        }
    }

    /// The canonical strategy for an [`Arbitrary`] type.
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> Result<T, Reason> {
            Ok(T::arbitrary(runner))
        }
    }
}

/// The usual imports for property tests.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a [`proptest!`] body; failure reports the message and
/// fails the test case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assert inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Inequality assert inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Discard the current test case (counts as neither pass nor fail).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config.clone());
            let combined = ($($strat,)+);
            let mut executed = 0u32;
            let mut attempts = 0u32;
            while executed < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(20) {
                    panic!(
                        "proptest {}: too many rejected cases ({} attempts)",
                        stringify!($name),
                        attempts
                    );
                }
                let generated = match $crate::strategy::Strategy::generate(
                    &combined,
                    &mut runner,
                ) {
                    Ok(v) => v,
                    Err(_) => continue,
                };
                let outcome: $crate::test_runner::TestCaseResult = (move || {
                    #[allow(unused_parens, irrefutable_let_patterns)]
                    let ($($pat,)+) = generated;
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => executed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed: {}", stringify!($name), msg)
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
