//! The [`Strategy`] trait and its combinators.

use crate::test_runner::{Reason, TestRunner};
use rand::Rng;

/// A generated value plus (in upstream proptest) its shrink tree. This
/// stand-in does not shrink, so the tree is just a snapshot of the value.
pub trait ValueTree {
    /// The type of value this tree produces.
    type Value;

    /// The current value.
    fn current(&self) -> Self::Value;
}

/// A [`ValueTree`] holding one generated value.
#[derive(Clone, Debug)]
pub struct Snapshot<T>(T);

impl<T: Clone> ValueTree for Snapshot<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value generated.
    type Value: Clone;

    /// Generate one value, or a rejection reason (e.g. a filter that never
    /// matched).
    fn generate(&self, runner: &mut TestRunner) -> Result<Self::Value, Reason>;

    /// Generate a value tree (upstream-compatible entry point).
    ///
    /// # Errors
    ///
    /// Returns the rejection reason if generation failed.
    fn new_tree(&self, runner: &mut TestRunner) -> Result<Snapshot<Self::Value>, Reason>
    where
        Self: Sized,
    {
        self.generate(runner).map(Snapshot)
    }

    /// Map generated values through `f`.
    fn prop_map<U: Clone, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chain a dependent strategy: `f` builds a new strategy from each
    /// generated value.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values for which `f` returns `true`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Clone, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, runner: &mut TestRunner) -> Result<U, Reason> {
        self.inner.generate(runner).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;

    fn generate(&self, runner: &mut TestRunner) -> Result<U::Value, Reason> {
        let base = self.inner.generate(runner)?;
        (self.f)(base).generate(runner)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, runner: &mut TestRunner) -> Result<S::Value, Reason> {
        for _ in 0..64 {
            let v = self.inner.generate(runner)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(format!("filter never satisfied: {}", self.whence))
    }
}

/// Strategy that always yields the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> Result<T, Reason> {
        Ok(self.0.clone())
    }
}

impl<T: rand::SampleUniform + Clone> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> Result<T, Reason> {
        Ok(runner.rng().gen_range(self.clone()))
    }
}

impl<T: rand::SampleUniform + Clone> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> Result<T, Reason> {
        Ok(runner.rng().gen_range(self.clone()))
    }
}

/// String patterns as strategies (upstream: full regex). This stand-in
/// supports the forms the workspace uses: `.{lo,hi}` (random strings of
/// bounded length) and plain literals (generated verbatim).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, runner: &mut TestRunner) -> Result<String, Reason> {
        // Characters deliberately include grammar-significant ASCII, digits,
        // whitespace, and some multi-byte code points.
        const POOL: &[char] = &[
            'a', 'b', 'z', 'A', 'M', 'X', '0', '9', '<', '>', ',', ';', '*', ':', '=', '^', '-',
            'T', '1', ' ', '\n', '\t', '_', '(', ')', '{', '}', '"', '\\', 'é', 'λ', '∞',
        ];
        if let Some(spec) = self.strip_prefix(".{").and_then(|s| s.strip_suffix('}')) {
            let (lo, hi) = spec
                .split_once(',')
                .ok_or_else(|| format!("unsupported pattern {self:?}"))?;
            let lo: usize = lo.trim().parse().map_err(|e| format!("{e}"))?;
            let hi: usize = hi.trim().parse().map_err(|e| format!("{e}"))?;
            let n = runner.rng().gen_range(lo..=hi);
            return Ok((0..n)
                .map(|_| POOL[runner.rng().gen_range(0..POOL.len())])
                .collect());
        }
        if self.contains(['[', '*', '+', '?', '|', '(', '.']) {
            return Err(format!(
                "proptest stand-in: unsupported regex pattern {self:?}"
            ));
        }
        Ok((*self).to_owned())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, runner: &mut TestRunner) -> Result<Self::Value, Reason> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Ok(($($name.generate(runner)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
