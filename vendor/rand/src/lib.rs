//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the API subset the workspace uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen_range`, `gen_bool`, and `gen`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! solid for test-data generation, *not* the same stream as upstream
//! `StdRng` (ChaCha12). Nothing in the workspace depends on the exact
//! stream, only on determinism for a fixed seed.

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)` (`hi` exclusive).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Sample uniformly from `[lo, hi]` (`hi` inclusive).
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_closed(rng, lo as f64, hi as f64) as f32
    }
}

/// A uniform f64 in `[0, 1)` from 53 random mantissa bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Types with a canonical "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one sample from the standard distribution.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self.next_u64()) < p
    }

    /// A sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors; guarantees a non-zero state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
            let x = r.gen_range(5u64..=5);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut r = StdRng::seed_from_u64(3);
        let v = sample(&mut r);
        assert!(v < 10);
    }
}
