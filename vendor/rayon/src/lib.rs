//! Minimal offline stand-in for `rayon`: scoped fork-join parallelism on
//! top of [`std::thread::scope`].
//!
//! Only the structured-concurrency subset the workspace needs is provided:
//! [`scope`] / [`Scope::spawn`], [`join`], and
//! [`current_num_threads`]. Unlike real rayon there is no work-stealing
//! pool — each `spawn` is an OS thread — so callers should spawn O(cores)
//! coarse tasks, which is exactly how the GEMM panel parallelism uses it.

/// Scoped task spawner handed to the [`scope`] closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task that may borrow from outside the scope; joined when the
    /// scope ends.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Run `op` with a [`Scope`]; all spawned tasks complete before `scope`
/// returns.
pub fn scope<'env, F, R>(op: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| op(&Scope { inner: s }))
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-lite: joined task panicked"))
    })
}

/// Number of hardware threads available.
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_all_tasks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn split_at_mut_across_scope() {
        let mut v = vec![0u64; 64];
        let (lo, hi) = v.split_at_mut(32);
        super::scope(|s| {
            s.spawn(move |_| lo.iter_mut().for_each(|x| *x = 1));
            s.spawn(move |_| hi.iter_mut().for_each(|x| *x = 2));
        });
        assert!(v[..32].iter().all(|&x| x == 1));
        assert!(v[32..].iter().all(|&x| x == 2));
    }
}
