//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, [`BenchmarkId`],
//! [`Throughput`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros — with a simple measurement loop: after a
//! short warm-up, each benchmark body is timed over enough iterations to
//! fill the measurement window, and the mean wall-clock time per
//! iteration (plus derived throughput, when declared) is printed.
//!
//! There is no statistical analysis, outlier rejection, or HTML report;
//! the numbers are honest wall-clock means, good enough for the coarse
//! "is the blocked kernel N× faster" comparisons tracked in this repo.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a function name and an input parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from the input parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Work performed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many abstract elements (e.g. FLOPs).
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Runs timing loops for one benchmark.
pub struct Bencher<'a> {
    measurement_time: Duration,
    /// Mean seconds per iteration, recorded by [`Bencher::iter`].
    result_secs: &'a mut f64,
}

impl Bencher<'_> {
    /// Time `f`, storing the mean seconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that fills
        // roughly the measurement window.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = self.measurement_time;
        let iters = (target.as_secs_f64() / once.as_secs_f64()).clamp(1.0, 1e9) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        *self.result_secs = start.elapsed().as_secs_f64() / iters as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Compatibility no-op (sampling is time-based here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement window for subsequent benchmarks.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.measurement_time = time;
        self
    }

    /// Run a benchmark taking a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.name);
        let secs = self
            .criterion
            .run_one(&full, self.throughput, |b| f(b, input));
        let _ = secs;
        self
    }

    /// Run a benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().name);
        self.criterion.run_one(&full, self.throughput, |b| f(b));
        self
    }

    /// End the group (upstream flushes reports here; no-op).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, None, |b| f(b));
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) -> f64 {
        let mut secs = 0.0;
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            result_secs: &mut secs,
        };
        f(&mut bencher);
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / secs;
                println!(
                    "{name:<48} time: {:>12}  thrpt: {rate:.3e} elem/s",
                    fmt_time(secs)
                );
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / secs / 1e9;
                println!(
                    "{name:<48} time: {:>12}  thrpt: {rate:.3} GB/s",
                    fmt_time(secs)
                );
            }
            None => println!("{name:<48} time: {:>12}", fmt_time(secs)),
        }
        secs
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declare a group of benchmark entry points.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
